#include "fed/env.hpp"

#include <algorithm>
#include <stdexcept>

namespace fp::fed {

FedEnv make_env(const data::TrainTest& data, const FedEnvConfig& cfg,
                sys::ModelSpec cost_spec) {
  FedEnv env;
  env.test = data.test;
  env.cost_spec = std::move(cost_spec);
  env.cost_cfg.batch_size = cfg.fl.batch_size;
  env.cost_cfg.pgd_steps = cfg.fl.pgd_steps;
  // Inference-kernel pricing follows the configured compute mode, so a
  // quantized run shifts every simulated device time (sync slowest-client
  // clocks and async event times alike) through train_step_cost's
  // frozen-prefix discount.
  env.cost_cfg.int8_inference =
      cfg.fl.compute.precision == compute::Precision::kInt8;
  env.cost_cfg.winograd_inference = cfg.fl.compute.winograd;

  data::Dataset train_pool = data.train;
  if (cfg.with_public_set) {
    auto split = data::split_public(data.train, cfg.public_fraction, cfg.fl.seed);
    env.public_set = std::move(split.public_set);
    train_pool = std::move(split.remainder);
  }
  data::PartitionConfig pcfg;
  pcfg.num_clients = cfg.fl.num_clients;
  pcfg.seed = cfg.fl.seed + 1;
  env.shards = data::partition_non_iid(train_pool, pcfg);

  float total = 0.0f;
  for (const auto& shard : env.shards) total += static_cast<float>(shard.size());
  env.weights.reserve(env.shards.size());
  for (const auto& shard : env.shards)
    env.weights.push_back(static_cast<float>(shard.size()) / total);

  const auto& pool = cfg.cifar_pool ? sys::cifar_device_pool()
                                    : sys::caltech_device_pool();
  env.devices.emplace(pool, cfg.heterogeneity, cfg.fl.seed + 2);
  if (cfg.persistent_devices) {
    // Paper fleet setup: client k owns one physical device for the whole
    // experiment; only real-time availability varies round to round. A
    // dedicated stream keeps the per-round degradation draws unperturbed.
    Rng bind_rng(cfg.fl.seed + 3);
    env.device_of_client.reserve(env.shards.size());
    for (std::size_t k = 0; k < env.shards.size(); ++k)
      env.device_of_client.push_back(env.devices->draw_pool_index(bind_rng));
  }
  env.client_cache = cfg.client_cache;
  env.iter_cache = cfg.iter_cache;
  return env;
}

FedEnv make_lazy_env(const data::SyntheticConfig& synth, const FedEnvConfig& cfg,
                     sys::ModelSpec cost_spec) {
  FedEnv env;
  env.cost_spec = std::move(cost_spec);
  env.cost_cfg.batch_size = cfg.fl.batch_size;
  env.cost_cfg.pgd_steps = cfg.fl.pgd_steps;
  env.cost_cfg.int8_inference =
      cfg.fl.compute.precision == compute::Precision::kInt8;
  env.cost_cfg.winograd_inference = cfg.fl.compute.winograd;

  data::ShardPlan plan;
  plan.synth = synth;
  plan.num_clients = cfg.fl.num_clients;
  plan.shard_size =
      cfg.shard_size > 0
          ? cfg.shard_size
          : std::max(cfg.fl.batch_size,
                     synth.train_size / std::max<std::int64_t>(
                                            1, cfg.fl.num_clients));
  {
    const data::PartitionConfig pdefaults;
    plan.major_class_fraction = pdefaults.major_class_fraction;
    plan.major_data_fraction = pdefaults.major_data_fraction;
  }
  env.lazy = std::make_shared<data::LazyShardSource>(plan);
  env.pool_size = cfg.fl.num_clients;
  env.client_cache = cfg.client_cache;
  env.iter_cache = cfg.iter_cache;

  env.test = env.lazy->render_test();
  if (cfg.with_public_set) {
    const auto n = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(cfg.public_fraction *
                                     static_cast<double>(synth.train_size)));
    env.public_set = env.lazy->render_public(n);
  }

  const auto& pool = cfg.cifar_pool ? sys::cifar_device_pool()
                                    : sys::caltech_device_pool();
  env.devices.emplace(pool, cfg.heterogeneity, cfg.fl.seed + 2);
  if (cfg.persistent_devices) {
    // Same binding convention as the eager path (dedicated seed+3 stream),
    // but derived statelessly per client: no O(pool) table.
    env.stateless_binding = true;
    env.bind_seed = cfg.fl.seed + 3;
  }

  if (cfg.materialize_plan) {
    env.shards.reserve(static_cast<std::size_t>(plan.num_clients));
    for (std::int64_t k = 0; k < plan.num_clients; ++k)
      env.shards.push_back(env.lazy->make_shard(k));
  }
  return env;
}

TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters) {
  sys::TrainCostConfig cfg = base_cfg;
  cfg.pgd_steps = work.pgd_steps;
  cfg.mem_scale = work.mem_scale;
  cfg.flops_scale = work.flops_scale;
  cfg.planned_mem_bytes = work.planned_mem_bytes;
  cfg.budget_mem_bytes = work.budget_mem_bytes;
  cfg.recompute_fwd_frac = work.recompute_fwd_frac;
  const sys::StepCost cost =
      sys::train_step_cost(spec, work.atom_begin, work.atom_end, work.with_aux,
                           cfg, device.avail_mem_bytes);
  const sys::StepTime t =
      sys::step_time(cost, device.avail_flops, device.io_bytes_per_s, cfg);
  TimeBreakdown out;
  out.compute_s = static_cast<double>(local_iters) * t.compute_s;
  out.access_s = static_cast<double>(local_iters) * t.access_s;
  return out;
}

TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters,
                              const comm::NetworkModel& net,
                              std::int64_t bytes_down, std::int64_t bytes_up) {
  TimeBreakdown out =
      client_sim_time(spec, device, work, base_cfg, local_iters);
  // One download + one upload per dispatch (not per local iteration).
  out.comm_s = net.round_trip_s(device, bytes_down, bytes_up);
  return out;
}

TimeBreakdown simulate_round_time(const sys::ModelSpec& spec,
                                  const std::vector<sys::DeviceInstance>& devices,
                                  const std::vector<ClientWork>& work,
                                  const sys::TrainCostConfig& base_cfg,
                                  std::int64_t local_iters) {
  if (devices.size() != work.size())
    throw std::invalid_argument("simulate_round_time: size mismatch");
  TimeBreakdown slowest;
  double slowest_total = -1.0;
  for (std::size_t k = 0; k < work.size(); ++k) {
    const TimeBreakdown t =
        client_sim_time(spec, devices[k], work[k], base_cfg, local_iters);
    if (t.total() > slowest_total) {
      slowest_total = t.total();
      slowest = t;
    }
  }
  return slowest;
}

}  // namespace fp::fed
