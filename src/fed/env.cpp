#include "fed/env.hpp"

#include <stdexcept>

namespace fp::fed {

FedEnv make_env(const data::TrainTest& data, const FedEnvConfig& cfg,
                sys::ModelSpec cost_spec) {
  FedEnv env;
  env.test = data.test;
  env.cost_spec = std::move(cost_spec);
  env.cost_cfg.batch_size = cfg.fl.batch_size;
  env.cost_cfg.pgd_steps = cfg.fl.pgd_steps;
  // Inference-kernel pricing follows the configured compute mode, so a
  // quantized run shifts every simulated device time (sync slowest-client
  // clocks and async event times alike) through train_step_cost's
  // frozen-prefix discount.
  env.cost_cfg.int8_inference =
      cfg.fl.compute.precision == compute::Precision::kInt8;
  env.cost_cfg.winograd_inference = cfg.fl.compute.winograd;

  data::Dataset train_pool = data.train;
  if (cfg.with_public_set) {
    auto split = data::split_public(data.train, cfg.public_fraction, cfg.fl.seed);
    env.public_set = std::move(split.public_set);
    train_pool = std::move(split.remainder);
  }
  data::PartitionConfig pcfg;
  pcfg.num_clients = cfg.fl.num_clients;
  pcfg.seed = cfg.fl.seed + 1;
  env.shards = data::partition_non_iid(train_pool, pcfg);

  float total = 0.0f;
  for (const auto& shard : env.shards) total += static_cast<float>(shard.size());
  env.weights.reserve(env.shards.size());
  for (const auto& shard : env.shards)
    env.weights.push_back(static_cast<float>(shard.size()) / total);

  const auto& pool = cfg.cifar_pool ? sys::cifar_device_pool()
                                    : sys::caltech_device_pool();
  env.devices.emplace(pool, cfg.heterogeneity, cfg.fl.seed + 2);
  if (cfg.persistent_devices) {
    // Paper fleet setup: client k owns one physical device for the whole
    // experiment; only real-time availability varies round to round. A
    // dedicated stream keeps the per-round degradation draws unperturbed.
    Rng bind_rng(cfg.fl.seed + 3);
    env.device_of_client.reserve(env.shards.size());
    for (std::size_t k = 0; k < env.shards.size(); ++k)
      env.device_of_client.push_back(env.devices->draw_pool_index(bind_rng));
  }
  return env;
}

TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters) {
  sys::TrainCostConfig cfg = base_cfg;
  cfg.pgd_steps = work.pgd_steps;
  cfg.mem_scale = work.mem_scale;
  cfg.flops_scale = work.flops_scale;
  cfg.planned_mem_bytes = work.planned_mem_bytes;
  cfg.budget_mem_bytes = work.budget_mem_bytes;
  cfg.recompute_fwd_frac = work.recompute_fwd_frac;
  const sys::StepCost cost =
      sys::train_step_cost(spec, work.atom_begin, work.atom_end, work.with_aux,
                           cfg, device.avail_mem_bytes);
  const sys::StepTime t =
      sys::step_time(cost, device.avail_flops, device.io_bytes_per_s, cfg);
  TimeBreakdown out;
  out.compute_s = static_cast<double>(local_iters) * t.compute_s;
  out.access_s = static_cast<double>(local_iters) * t.access_s;
  return out;
}

TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters,
                              const comm::NetworkModel& net,
                              std::int64_t bytes_down, std::int64_t bytes_up) {
  TimeBreakdown out =
      client_sim_time(spec, device, work, base_cfg, local_iters);
  // One download + one upload per dispatch (not per local iteration).
  out.comm_s = net.round_trip_s(device, bytes_down, bytes_up);
  return out;
}

TimeBreakdown simulate_round_time(const sys::ModelSpec& spec,
                                  const std::vector<sys::DeviceInstance>& devices,
                                  const std::vector<ClientWork>& work,
                                  const sys::TrainCostConfig& base_cfg,
                                  std::int64_t local_iters) {
  if (devices.size() != work.size())
    throw std::invalid_argument("simulate_round_time: size mismatch");
  TimeBreakdown slowest;
  double slowest_total = -1.0;
  for (std::size_t k = 0; k < work.size(); ++k) {
    const TimeBreakdown t =
        client_sim_time(spec, devices[k], work[k], base_cfg, local_iters);
    if (t.total() > slowest_total) {
      slowest_total = t.total();
      slowest = t;
    }
  }
  return slowest;
}

}  // namespace fp::fed
