#include "fed/algorithm.hpp"

namespace fp::fed {

void FederatedAlgorithm::run(std::int64_t eval_every) {
  for (std::int64_t t = 0; t < cfg_.rounds; ++t) {
    run_round(t);
    if (eval_every > 0 && (t + 1) % eval_every == 0)
      history_.push_back(evaluate_snapshot(t + 1));
  }
  if (history_.empty() || history_.back().round != cfg_.rounds)
    history_.push_back(evaluate_snapshot(cfg_.rounds));
}

RoundRecord FederatedAlgorithm::evaluate_snapshot(std::int64_t round,
                                                  std::int64_t max_samples,
                                                  int pgd_steps) {
  attack::RobustEvalConfig ecfg;
  ecfg.epsilon = cfg_.epsilon0;
  ecfg.pgd_steps = pgd_steps;
  ecfg.max_samples = max_samples;
  RoundRecord rec;
  rec.round = round;
  rec.clean_acc = attack::evaluate_clean(global_model(), env_->test,
                                         ecfg.batch_size, max_samples);
  rec.adv_acc = attack::evaluate_pgd(global_model(), env_->test, ecfg);
  rec.sim_time_s = sim_time_.total();
  return rec;
}

FederatedAlgorithm::RoundClients FederatedAlgorithm::sample_round() {
  RoundClients rc;
  rc.ids = sampler_.sample(cfg_.clients_per_round);
  if (env_->devices)
    rc.devices = env_->devices->sample_n(rc.ids.size());
  return rc;
}

}  // namespace fp::fed
