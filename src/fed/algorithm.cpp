#include "fed/algorithm.hpp"

#include <algorithm>

namespace fp::fed {

FederatedAlgorithm::FederatedAlgorithm(FedEnv& env, FlConfig cfg)
    : env_(&env), cfg_(cfg), engine_(std::make_unique<RoundEngine>(env, cfg_)) {}

FederatedAlgorithm::~FederatedAlgorithm() = default;

void FederatedAlgorithm::run_round(std::int64_t t) {
  last_stats_ = engine_->run_round(*this, t);
  add_sim_time(last_stats_.time);  // running total lives in sim_time_
  total_stats_.dispatched += last_stats_.dispatched;
  total_stats_.applied += last_stats_.applied;
  total_stats_.dropped_stragglers += last_stats_.dropped_stragglers;
  total_stats_.dropped_out += last_stats_.dropped_out;
  total_stats_.bytes_down += last_stats_.bytes_down;
  total_stats_.bytes_up += last_stats_.bytes_up;
  total_stats_.peak_mem_bytes =
      std::max(total_stats_.peak_mem_bytes, last_stats_.peak_mem_bytes);
  total_stats_.over_budget += last_stats_.over_budget;
  // Already cumulative in the engine (distinct-client set size).
  total_stats_.unique_participants = last_stats_.unique_participants;
  total_stats_.agg_bytes_saved += last_stats_.agg_bytes_saved;
  total_stats_.measured_comm_s += last_stats_.measured_comm_s;
  total_stats_.round_wall_s += last_stats_.round_wall_s;
}

void FederatedAlgorithm::run(std::int64_t eval_every) {
  for (std::int64_t t = 0; t < cfg_.rounds; ++t) {
    run_round(t);
    if (eval_every > 0 && (t + 1) % eval_every == 0)
      history_.push_back(evaluate_snapshot(t + 1));
  }
  if (history_.empty() || history_.back().round != cfg_.rounds)
    history_.push_back(evaluate_snapshot(cfg_.rounds));
}

RoundRecord FederatedAlgorithm::evaluate_snapshot(std::int64_t round,
                                                  std::int64_t max_samples,
                                                  int pgd_steps) {
  attack::RobustEvalConfig ecfg;
  ecfg.epsilon = cfg_.epsilon0;
  ecfg.pgd_steps = pgd_steps;
  ecfg.max_samples = max_samples;
  ecfg.compute = cfg_.compute;
  RoundRecord rec;
  rec.round = round;
  rec.clean_acc = attack::evaluate_clean(global_model(), env_->test,
                                         ecfg.batch_size, max_samples,
                                         ecfg.compute);
  rec.adv_acc = attack::evaluate_pgd(global_model(), env_->test, ecfg);
  rec.sim_time_s = sim_time_.total();
  rec.bytes_up = total_stats_.bytes_up;
  rec.bytes_down = total_stats_.bytes_down;
  rec.peak_mem_bytes = total_stats_.peak_mem_bytes;
  rec.unique_participants = total_stats_.unique_participants;
  rec.agg_bytes_saved = total_stats_.agg_bytes_saved;
  rec.measured_comm_s = total_stats_.measured_comm_s;
  rec.round_wall_s = total_stats_.round_wall_s;
  return rec;
}

}  // namespace fp::fed
