// Shared budget-aware client execution (mem subsystem, DESIGN.md §6).
//
// Every task factory does the same dance in train_client: read the budget
// bound to this thread (mem::ClientMemScope), plan the local training step's
// peak, switch the local model to checkpointed execution when the plan
// demands it, and price the decision into ClientWork. This helper owns that
// dance once so the five methods cannot drift apart.
#pragma once

#include <cstdint>

#include "fed/env.hpp"
#include "models/built_model.hpp"

namespace fp::fed {

/// No-op unless a budget is enforced on this thread. `adversarial` states
/// whether this client's step runs a PGD inner maximization (the plan
/// reserves the attack's working set only then). `pricing_scale` is the
/// device_mem_scale mapping of the spec this client's work is priced on:
/// methods priced on the paper-shape cost spec pass
/// engine().config().mem.device_mem_scale; methods priced on the trainable
/// spec itself (FedProphet) pass 1.0. `aux_params_loaded` counts auxiliary
/// head parameters resident in the replica beyond the trained range (the
/// trained head, when with_aux_head is set, is charged by the planner
/// itself).
void apply_budgeted_execution(const sys::ModelSpec& spec,
                              std::size_t atom_begin, std::size_t atom_end,
                              std::int64_t batch_size, bool with_aux_head,
                              bool adversarial,
                              std::int64_t aux_params_loaded,
                              models::BuiltModel& local, double pricing_scale,
                              ClientWork* work);

}  // namespace fp::fed
