#include "fed/client_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace fp::fed {

ClientPool::ClientPool(const FedEnv& env, std::uint64_t seed,
                       std::uint64_t stream_base)
    : env_(&env),
      seed_(seed),
      stream_base_(stream_base),
      session_(env.session_mode()) {
  if (session_) {
    if (env.client_cache > 0) cache_cap_ = env.client_cache;
    return;  // nothing resident per pool client
  }
  state_.resize(static_cast<std::size_t>(env.num_clients()));
  for (std::size_t k = 0; k < state_.size(); ++k)
    state_[k].rng = Rng(seed + stream_base + k);
}

Rng& ClientPool::rng(std::size_t k) {
  if (!session_) return state_[k].rng;
  return acquire(k).rng;
}

data::BatchIterator& ClientPool::batches(std::size_t k,
                                         std::int64_t batch_size) {
  if (!session_) {
    auto& s = state_[k];
    s.last_used = round_;
    if (!s.batches) s.batches.emplace(env_->shards[k], batch_size, s.rng);
    return *s.batches;
  }
  Session& s = acquire(k);
  if (!s.iter) s.iter.emplace(*s.shard, batch_size, s.rng);
  return *s.iter;
}

void ClientPool::note_dispatch(std::size_t k) {
  if (!session_) {
    state_[k].last_used = round_;
    return;
  }
  // Sessions are opened on first touch (acquire), off the engine thread, so
  // shard synthesis parallelizes with training; nothing to pre-build here.
  (void)k;
}

ClientPool::Session& ClientPool::acquire(std::size_t k) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(k);
    if (it != sessions_.end()) return it->second;
  }
  // Synthesize outside the lock: a client is trained by exactly one worker
  // per round, so no other thread builds this key concurrently; the
  // try_emplace below handles the benign probe/dispatch overlap anyway.
  std::shared_ptr<const data::Dataset> shard = shard_of(k);
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = sessions_.try_emplace(k);
  if (inserted) {
    // Stream = f(seed, client, #prior sessions of this client): independent
    // of slot order, thread count, and LRU capacity, so a re-sampled client
    // gets the same derived stream no matter how the round was scheduled.
    const std::uint64_t count = dispatch_count_[k]++;
    it->second.rng = Rng(Rng::mix_seed(
        Rng::mix_seed(seed_ + stream_base_, static_cast<std::uint64_t>(k)),
        count));
    it->second.shard = std::move(shard);
  }
  return it->second;
}

std::shared_ptr<const data::Dataset> ClientPool::shard_of(std::size_t k) {
  if (!env_->shards.empty()) {
    // Materialized plan: borrow the resident shard (non-owning alias).
    return {std::shared_ptr<const void>(), &env_->shards[k]};
  }
  static obs::Counter& hits = obs::counter("scale.shard_cache_hits");
  static obs::Counter& misses = obs::counter("scale.shard_cache_misses");
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = cache_.find(k);
    if (it != cache_.end()) {
      it->second.tick = ++tick_;
      hits.add();
      return it->second.ds;
    }
  }
  misses.add();
  auto ds = std::make_shared<const data::Dataset>(
      env_->lazy->make_shard(static_cast<std::int64_t>(k)));
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = cache_.try_emplace(k, CacheEntry{ds, ++tick_});
  if (!inserted) {
    it->second.tick = ++tick_;
    return it->second.ds;
  }
  if (static_cast<std::int64_t>(cache_.size()) > cache_cap_) {
    // Evict the least-recently-used entry. Open sessions keep their shard
    // alive through the shared_ptr, so eviction never invalidates a running
    // client — and since shards are pure functions of (seed, client), the
    // cache capacity can never change results, only synthesis count.
    auto victim = cache_.begin();
    for (auto jt = cache_.begin(); jt != cache_.end(); ++jt)
      if (jt->second.tick < victim->second.tick) victim = jt;
    cache_.erase(victim);
  }
  return ds;
}

void ClientPool::end_round() {
  if (session_) {
    std::lock_guard<std::mutex> lk(mu_);
    sessions_.clear();
    return;
  }
  // Eager-mode iterator eviction (opt-in, env.iter_cache > 0): keep only the
  // most recently dispatched iterators so long runs with large pools stop
  // accumulating per-client iterator state.
  if (env_->iter_cache <= 0) return;
  std::vector<std::pair<std::int64_t, std::size_t>> engaged;
  for (std::size_t k = 0; k < state_.size(); ++k)
    if (state_[k].batches) engaged.emplace_back(state_[k].last_used, k);
  if (static_cast<std::int64_t>(engaged.size()) <= env_->iter_cache) return;
  std::sort(engaged.begin(), engaged.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (std::size_t i = static_cast<std::size_t>(env_->iter_cache);
       i < engaged.size(); ++i)
    state_[engaged[i].second].batches.reset();
}

std::size_t ClientPool::resident_iterators() const {
  if (session_) {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto& [k, s] : sessions_)
      if (s.iter) ++n;
    return n;
  }
  std::size_t n = 0;
  for (const auto& s : state_)
    if (s.batches) ++n;
  return n;
}

std::size_t ClientPool::resident_shards() const {
  std::lock_guard<std::mutex> lk(mu_);
  return cache_.size();
}

}  // namespace fp::fed
