// History exporters: accuracy / simulated-time trajectories as CSV or JSON,
// so bench runs can be diffed across commits instead of scraped from stdout.
#pragma once

#include <string>

#include "fed/config.hpp"

namespace fp::fed {

/// Writes `round,clean_acc,adv_acc,sim_time_s,bytes_up,bytes_down,
/// peak_mem_bytes,extra` rows (with a header); the byte columns are
/// cumulative wire traffic, peak_mem_bytes the max measured client training
/// peak so far (0 unless the mem subsystem's measurement is on).
/// Creates parent directories as needed. Returns false on I/O failure.
bool write_history_csv(const std::string& path, const History& history);

/// Writes `{"method": ..., "history": [{...}, ...]}`. Returns false on
/// I/O failure.
bool write_history_json(const std::string& path, const std::string& method,
                        const History& history);

/// Replaces everything outside [A-Za-z0-9._-] with '_' (method -> filename).
std::string sanitize_filename(const std::string& name);

/// When the FP_BENCH_OUT environment variable names a directory, writes
/// `<FP_BENCH_OUT>/<sanitized method>.csv` (repeat runs of the same method
/// get a `-2`, `-3`, ... suffix) and returns true; no-op otherwise.
/// The bench binaries call this for every trained method.
bool export_history_if_requested(const std::string& method,
                                 const History& history);

}  // namespace fp::fed
