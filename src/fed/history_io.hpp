// History exporters: accuracy / simulated-time trajectories as CSV or JSON,
// so bench runs can be diffed across commits instead of scraped from stdout.
#pragma once

#include <string>

#include "fed/config.hpp"

namespace fp::fed {

/// Writes `round,clean_acc,adv_acc,sim_time_s,bytes_up,bytes_down,
/// peak_mem_bytes,unique_participants,agg_bytes_saved,measured_comm_s,extra`
/// rows (with a header); the byte columns are cumulative wire traffic,
/// peak_mem_bytes the max measured client training peak so far (0 unless the
/// mem subsystem's measurement is on), unique_participants the distinct
/// clients applied so far, agg_bytes_saved the cumulative backbone bytes
/// absorbed by edge aggregators (0 when aggregation is flat), and
/// measured_comm_s the cumulative real-clock transfer seconds of a
/// distributed root run (0 single-process) next to the modeled comm time
/// inside sim_time_s.
/// Creates parent directories as needed. Returns false on I/O failure.
bool write_history_csv(const std::string& path, const History& history);

/// Writes `{"method": ..., "history": [{...}, ...]}`. Returns false on
/// I/O failure.
bool write_history_json(const std::string& path, const std::string& method,
                        const History& history);

/// Replaces everything outside [A-Za-z0-9._-] with '_' (method -> filename).
std::string sanitize_filename(const std::string& name);

/// The path an FP_BENCH_OUT export of `method` would use right now:
/// `<FP_BENCH_OUT>/<sanitized method>.csv`, with a `-2`, `-3`, ... suffix
/// when earlier runs of the same method already exported. Returns "" when
/// FP_BENCH_OUT is unset. The single FP_BENCH_OUT entry point is
/// exp::export_run_artifacts, which derives the trajectory CSV and the
/// sibling resolved-spec JSON names from this.
std::string export_history_path(const std::string& method);

}  // namespace fp::fed
