// Shared federated-learning experiment configuration and bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/codec.hpp"
#include "mem/budget.hpp"
#include "nn/optimizer.hpp"
#include "sysmodel/cost_model.hpp"
#include "sysmodel/device.hpp"
#include "tensor/compute_mode.hpp"

namespace fp::fed {

/// Which RoundScheduler drives the engine (DESIGN.md §4).
enum class SchedulerKind {
  kSync,   ///< barrier rounds, bit-identical to the historical loops
  kAsync,  ///< event-driven FedAsync-style replay of device latencies
};

/// Event-driven scheduling knobs (only read when scheduler == kAsync).
struct AsyncConfig {
  /// Concurrently in-flight clients (0 = clients_per_round).
  std::int64_t concurrency = 0;
  /// FedAsync base mixing rate: an update with staleness s lands with
  /// coefficient alpha / (s + 1).
  double alpha = 0.6;
  /// Updates slower than this many simulated seconds are discarded and the
  /// slot is refilled (0 = wait forever, i.e. no straggler cutoff).
  double straggler_cutoff_s = 0.0;
  /// Probability that a dispatched client vanishes and never uploads.
  double dropout_prob = 0.0;
  /// Additionally scale the mixing coefficient by q_k * N (relative data
  /// size), so data-rich clients move the global model proportionally more.
  bool scale_by_data = true;
  /// Floor on the applied mixing coefficient (very stale updates still nudge).
  double min_mix = 1e-3;
};

/// Availability churn (DESIGN.md §9): which clients are online each round and
/// which dispatched clients vanish mid-round. All draws come from a DEDICATED
/// stateless stream keyed on (seed, client, round/epoch), so enabling churn
/// never perturbs sampling, training, or device streams — and disabling it
/// (the default) keeps every historical output bit-identical.
struct ChurnConfig {
  bool enabled = false;
  /// Expected fraction of the pool online in any round.
  double online_frac = 0.8;
  /// Rounds between availability re-draws: a client stays online/offline for
  /// a whole period (session-like arrival/departure, not per-round coin flips).
  std::int64_t period_rounds = 8;
  /// Probability that a dispatched, online client drops out before uploading
  /// (in addition to any async dropout_prob).
  double drop_prob = 0.0;
};

/// Hierarchical aggregation (DESIGN.md §9): edge aggregators partially reduce
/// their group's uploads before the server applies, bounding server-resident
/// upload blobs to O(group) and pricing one extra edge→server hop. 0 = flat
/// (historical) aggregation.
struct AggTreeConfig {
  std::int64_t aggregators = 0;
  double up_mbps = 100.0;   ///< edge→server backbone bandwidth
  double latency_s = 0.01;  ///< edge→server one-way latency
};

struct FlConfig {
  std::int64_t num_clients = 20;        ///< N (paper: 100)
  std::int64_t clients_per_round = 5;   ///< C (paper: 10)
  std::int64_t local_iters = 10;        ///< E local SGD steps (paper: 30)
  std::int64_t batch_size = 32;         ///< B (paper: 64 / 32)
  std::int64_t rounds = 50;             ///< paper: 500 jFAT / 1000 others
  float lr0 = 0.01f;
  float lr_decay = 0.994f;              ///< per-round exponential decay (§B.4)
  nn::SgdConfig sgd{0.01f, 0.9f, 1e-4f};
  int pgd_steps = 7;                    ///< PGD-n adversarial training (paper: 10)
  float epsilon0 = 8.0f / 255.0f;       ///< input perturbation bound (§7.1)
  std::uint64_t seed = 123;
  SchedulerKind scheduler = SchedulerKind::kSync;
  AsyncConfig async;
  /// Wire codec + network-model knobs (src/comm/, DESIGN.md §5). Defaults
  /// (IdentityCodec, network model off) keep historical outputs bit-identical.
  comm::CommConfig comm;
  /// Memory-plane knobs (src/mem/, DESIGN.md §6). Defaults (no measurement,
  /// no budgets, no checkpointing) keep historical outputs bit-identical.
  mem::MemConfig mem;
  /// Precision of inference-only forwards — the cascade's frozen prefix and
  /// every evaluation pass (DESIGN.md §8). The default ({fp32, no winograd})
  /// keeps historical outputs bit-identical; gradient-carrying forwards are
  /// always fp32 regardless of this setting.
  compute::ComputeConfig compute;
  /// Availability churn process (DESIGN.md §9). Off by default.
  ChurnConfig churn;
  /// Hierarchical aggregation tree (DESIGN.md §9). Flat by default.
  AggTreeConfig agg;
};

/// Simulated wall-clock decomposition (paper Figs. 2/7, Table 4).
struct TimeBreakdown {
  double compute_s = 0.0;
  double access_s = 0.0;
  double comm_s = 0.0;  ///< network transfer time (zero unless comm.model_network)
  double total() const { return compute_s + access_s + comm_s; }
  void operator+=(const TimeBreakdown& other) {
    compute_s += other.compute_s;
    access_s += other.access_s;
    comm_s += other.comm_s;
  }
};

/// One evaluation snapshot along training.
struct RoundRecord {
  std::int64_t round = 0;
  double clean_acc = 0.0;
  double adv_acc = 0.0;
  double sim_time_s = 0.0;  ///< cumulative simulated wall clock
  double extra = 0.0;       ///< algorithm-specific scalar (e.g. eps per dim)
  std::int64_t bytes_up = 0;    ///< cumulative wire bytes uploaded
  std::int64_t bytes_down = 0;  ///< cumulative wire bytes downloaded
  /// Largest measured client training peak so far (bytes; 0 unless the mem
  /// subsystem's measurement is on — see mem::MemConfig).
  std::int64_t peak_mem_bytes = 0;
  /// Distinct clients that contributed at least one applied update so far.
  std::int64_t unique_participants = 0;
  /// Cumulative backbone bytes saved by edge pre-reduction (0 when flat).
  std::int64_t agg_bytes_saved = 0;
  /// Cumulative MEASURED wire-transfer seconds of a distributed root run
  /// (real clock, DESIGN.md §10; 0 in single-process runs) — the column the
  /// modeled comm_s inside sim_time_s is checked against.
  double measured_comm_s = 0.0;
  /// Cumulative REAL wall-clock seconds spent inside engine rounds (steady
  /// clock, DESIGN.md §11) — the measured counterpart of the simulated
  /// sim_time_s. Appended last: run-dependent by nature, never compared
  /// across runs.
  double round_wall_s = 0.0;
};

using History = std::vector<RoundRecord>;

}  // namespace fp::fed
