// Local end-to-end (whole-model) adversarial training step, shared by jFAT,
// the partial-training baselines (on their sliced models), the KD baselines
// (on their heterogeneous models), and FedRBN (dual-BN variant).
#pragma once

#include "data/dataset.hpp"
#include "models/built_model.hpp"
#include "nn/optimizer.hpp"

namespace fp::baselines {

struct LocalAtConfig {
  float epsilon = 8.0f / 255.0f;
  int pgd_steps = 7;
  bool adversarial = true;  ///< false = standard training
  /// FedRBN dual-BN: clean pass uses bank 0, adversarial pass bank 1, and the
  /// update averages both losses. Off = single-bank AT on adversarial inputs.
  bool dual_bn = false;
};

/// One SGD iteration; returns the training loss. The optimizer must be bound
/// to the model's full parameter/gradient lists.
float at_train_batch(models::BuiltModel& model, nn::Sgd& optimizer,
                     const data::Batch& batch, const LocalAtConfig& cfg, Rng& rng);

}  // namespace fp::baselines
