// FedRBN (Hong et al. 2023): Federated Robustness Propagation.
//
// Clients with enough memory run dual-BN adversarial training (clean
// statistics in bank 0, adversarial statistics in bank 1); memory-poor
// clients run standard training, updating only the clean bank. FedAvg
// aggregates parameters and both statistic banks, which propagates the
// adversarial BN statistics from AT clients to everyone. Clean inference
// uses bank 0; robust inference uses bank 1. Under high systematic
// heterogeneity few clients can afford AT, so clean accuracy stays high but
// robustness collapses — the signature the paper reports in Table 2.
#pragma once

#include "baselines/local_at.hpp"
#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"

namespace fp::baselines {

struct FedRbnConfig {
  fed::FlConfig fl;
  sys::ModelSpec model_spec;  ///< must contain BatchNorm layers
  double device_mem_scale = 1.0;
};

class FedRbn final : public fed::FederatedAlgorithm {
 public:
  FedRbn(fed::FedEnv& env, FedRbnConfig cfg);

  std::string name() const override { return "FedRBN"; }
  models::BuiltModel& global_model() override { return model_; }

  /// Selects the BN bank for evaluation (bank 1 = adversarial).
  void use_adv_bank(bool adv) { model_.use_bn_bank(adv ? 1 : 0); }

  /// Clean accuracy with the clean bank, adversarial with the adv bank.
  fed::RoundRecord evaluate_snapshot(std::int64_t round,
                                     std::int64_t max_samples = 256,
                                     int pgd_steps = 10) override;

  /// Fraction of client selections that could afford adversarial training.
  double at_client_fraction() const {
    return selections_ ? static_cast<double>(at_selections_) /
                             static_cast<double>(selections_)
                       : 0.0;
  }

 private:
  // RoundEngine hooks: dual-BN AT on memory-rich clients, standard training
  // on the rest; FedAvg over full blobs (both statistic banks travel).
  void begin_dispatch(const std::vector<fed::TaskSpec>& tasks) override;
  fed::Upload train_client(const fed::TaskSpec& task) override;
  void apply_update(const fed::TaskSpec& task, fed::Upload&& up,
                    fed::ApplyMode mode, float mix) override;
  void finalize_round(std::int64_t t) override;

  Rng init_rng_;
  FedRbnConfig cfg2_;
  models::BuiltModel model_;
  std::int64_t full_mem_bytes_;
  fed::ClientPool clients_;
  std::int64_t selections_ = 0, at_selections_ = 0;

  // Dispatch/aggregation state owned by the engine pipeline.
  nn::ParamBlob broadcast_;            ///< as decoded by clients (wire codec)
  std::int64_t broadcast_bytes_ = 0;   ///< wire size of one broadcast download
  nn::SgdConfig round_sgd_;
  std::vector<char> can_at_;  ///< per-slot adversarial eligibility
  fed::BlobAverager averager_;
};

}  // namespace fp::baselines
