// jFAT (Zizzo et al. 2020): joint federated adversarial training.
// Every client adversarially trains the whole model end-to-end and FedAvg
// aggregates. On memory-constrained devices this is the method that pays the
// memory-swapping latency (paper Figs. 2/7).
#pragma once

#include "baselines/local_at.hpp"
#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"

namespace fp::baselines {

struct JFatConfig {
  fed::FlConfig fl;
  sys::ModelSpec model_spec;
  bool adversarial = true;  ///< false gives plain FedAvg (diagnostics)
};

class JFat final : public fed::FederatedAlgorithm {
 public:
  JFat(fed::FedEnv& env, JFatConfig cfg);

  std::string name() const override { return adversarial_ ? "jFAT" : "FedAvg"; }
  models::BuiltModel& global_model() override { return model_; }

 private:
  // RoundEngine hooks: broadcast the full model, adversarially train it end
  // to end on each client, FedAvg the uploaded blobs.
  void begin_dispatch(const std::vector<fed::TaskSpec>& tasks) override;
  fed::Upload train_client(const fed::TaskSpec& task) override;
  void apply_update(const fed::TaskSpec& task, fed::Upload&& up,
                    fed::ApplyMode mode, float mix) override;
  void finalize_round(std::int64_t t) override;

  // Distributed-runtime hooks (DESIGN.md §10): context = the encoded
  // broadcast + round lr; uploads travel as the channel-encoded WireMessage
  // (worker mode) or the dense decoded blob (net.codec=identity).
  bool net_capable() const override { return true; }
  void net_save_context(comm::FrameWriter& out) const override;
  void net_load_context(comm::FrameReader& in) override;
  void net_begin_group(const std::vector<fed::TaskSpec>& owned) override;
  void net_end_group() override;
  void net_encode_upload(const fed::Upload& up,
                         comm::FrameWriter& out) const override;
  fed::Upload net_decode_upload(const fed::TaskSpec& task,
                                comm::FrameReader& in) override;
  void net_set_worker_mode(bool on) override { net_worker_ = on; }

  Rng init_rng_;  ///< seeds weight init (deterministic per cfg.fl.seed)
  models::BuiltModel model_;
  bool adversarial_;
  fed::ClientPool clients_;

  // Dispatch/aggregation state owned by the engine pipeline.
  nn::ParamBlob broadcast_;            ///< as decoded by clients (wire codec)
  std::int64_t broadcast_bytes_ = 0;   ///< wire size of one broadcast download
  LocalAtConfig at_;
  nn::SgdConfig round_sgd_;
  fed::BlobAverager averager_;

  // Distributed runtime (DESIGN.md §10).
  bool net_worker_ = false;  ///< stage encoded uplinks instead of blobs
  comm::WireMessage net_bcast_msg_;  ///< root: the broadcast as encoded
};

}  // namespace fp::baselines
