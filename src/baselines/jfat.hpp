// jFAT (Zizzo et al. 2020): joint federated adversarial training.
// Every client adversarially trains the whole model end-to-end and FedAvg
// aggregates. On memory-constrained devices this is the method that pays the
// memory-swapping latency (paper Figs. 2/7).
#pragma once

#include "baselines/local_at.hpp"
#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"

namespace fp::baselines {

struct JFatConfig {
  fed::FlConfig fl;
  sys::ModelSpec model_spec;
  bool adversarial = true;  ///< false gives plain FedAvg (diagnostics)
};

class JFat final : public fed::FederatedAlgorithm {
 public:
  JFat(fed::FedEnv& env, JFatConfig cfg);

  std::string name() const override { return adversarial_ ? "jFAT" : "FedAvg"; }
  models::BuiltModel& global_model() override { return model_; }

 private:
  // RoundEngine hooks: broadcast the full model, adversarially train it end
  // to end on each client, FedAvg the uploaded blobs.
  void begin_dispatch(const std::vector<fed::TaskSpec>& tasks) override;
  fed::Upload train_client(const fed::TaskSpec& task) override;
  void apply_update(const fed::TaskSpec& task, fed::Upload&& up,
                    fed::ApplyMode mode, float mix) override;
  void finalize_round(std::int64_t t) override;

  Rng init_rng_;  ///< seeds weight init (deterministic per cfg.fl.seed)
  models::BuiltModel model_;
  bool adversarial_;
  fed::ClientPool clients_;

  // Dispatch/aggregation state owned by the engine pipeline.
  nn::ParamBlob broadcast_;            ///< as decoded by clients (wire codec)
  std::int64_t broadcast_bytes_ = 0;   ///< wire size of one broadcast download
  LocalAtConfig at_;
  nn::SgdConfig round_sgd_;
  fed::BlobAverager averager_;
};

}  // namespace fp::baselines
