// jFAT (Zizzo et al. 2020): joint federated adversarial training.
// Every client adversarially trains the whole model end-to-end and FedAvg
// aggregates. On memory-constrained devices this is the method that pays the
// memory-swapping latency (paper Figs. 2/7).
#pragma once

#include "baselines/local_at.hpp"
#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"

namespace fp::baselines {

struct JFatConfig {
  fed::FlConfig fl;
  sys::ModelSpec model_spec;
  bool adversarial = true;  ///< false gives plain FedAvg (diagnostics)
};

class JFat final : public fed::FederatedAlgorithm {
 public:
  JFat(fed::FedEnv& env, JFatConfig cfg);

  std::string name() const override { return adversarial_ ? "jFAT" : "FedAvg"; }
  models::BuiltModel& global_model() override { return model_; }
  void run_round(std::int64_t t) override;

 private:
  Rng init_rng_;  ///< seeds weight init (deterministic per cfg.fl.seed)
  models::BuiltModel model_;
  bool adversarial_;
  fed::ClientPool clients_;
};

}  // namespace fp::baselines
