#include "baselines/distillation.hpp"

#include <algorithm>
#include <stdexcept>

#include "fed/budget_exec.hpp"
#include "tensor/ops.hpp"

namespace fp::baselines {

DistillationFAT::DistillationFAT(fed::FedEnv& env, DistillationConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0xd15717),
      cfg2_(std::move(cfg)),
      clients_(env, cfg2_.fl.seed),
      public_rng_(cfg2_.fl.seed + 404) {
  if (cfg2_.family.empty())
    throw std::invalid_argument("DistillationFAT: empty model family");
  if (env.public_set.size() == 0)
    throw std::invalid_argument("DistillationFAT: environment has no public set");
  for (const auto& spec : cfg2_.family) {
    prototypes_.push_back(std::make_unique<models::BuiltModel>(spec, init_rng_));
    family_mem_.push_back(sys::module_train_mem_bytes(
        spec, 0, spec.atoms.size(), cfg2_.fl.batch_size, false));
  }
  per_arch_.resize(prototypes_.size());
}

std::size_t DistillationFAT::arch_for_mem(std::int64_t avail_mem_bytes) const {
  const double budget =
      static_cast<double>(avail_mem_bytes) * cfg2_.device_mem_scale;
  std::size_t best = 0;  // the smallest model is always allowed
  for (std::size_t a = 0; a < family_mem_.size(); ++a)
    if (static_cast<double>(family_mem_[a]) <= budget) best = a;
  return best;
}

void DistillationFAT::begin_dispatch(const std::vector<fed::TaskSpec>& tasks) {
  clients_.begin_round(tasks);
  at_ = LocalAtConfig{};
  at_.epsilon = cfg_.epsilon0;
  at_.pgd_steps = cfg2_.adversarial ? cfg_.pgd_steps : 0;
  at_.adversarial = cfg2_.adversarial;
  round_sgd_ = cfg_.sgd;
  if (!tasks.empty()) round_sgd_.lr = tasks.front().lr;

  // The snapshots survive across dispatch groups until finalize_round
  // changes the prototypes (async dropout/straggler refills reuse them).
  // A client only downloads the one architecture it trains, so wire sizes
  // are tracked per prototype.
  if (broadcast_.empty()) {
    broadcast_.reserve(prototypes_.size());
    broadcast_bytes_.assign(prototypes_.size(), 0);
    for (std::size_t a = 0; a < prototypes_.size(); ++a)
      broadcast_.push_back(engine().channel().downlink(
          prototypes_[a]->save_all(), &broadcast_bytes_[a]));
  }

  // Each client trains the largest architecture its memory affords.
  archs_.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    archs_[i] = tasks[i].has_device
                    ? arch_for_mem(tasks[i].device.avail_mem_bytes)
                    : prototypes_.size() - 1;
}

fed::Upload DistillationFAT::train_client(const fed::TaskSpec& task) {
  const std::size_t arch = archs_[task.slot];
  Rng build_rng(0);  // replica init is overwritten by the broadcast blob
  models::BuiltModel local(cfg2_.family[arch], build_rng);
  local.load_all(broadcast_[arch]);

  fed::Upload up;
  up.weight = task.weight;
  up.work.atom_begin = 0;
  up.work.atom_end = env_->cost_spec.atoms.size();
  up.work.with_aux = false;
  up.work.pgd_steps = at_.pgd_steps;
  const double scale = static_cast<double>(family_mem_[arch]) /
                       static_cast<double>(family_mem_.back());
  up.work.mem_scale = scale;    // the chosen model fits: no swap
  up.work.flops_scale = scale;  // smaller model, proportionally less compute
  // Budget-aware execution (mem subsystem) on the chosen family member.
  fed::apply_budgeted_execution(cfg2_.family[arch], 0, local.num_atoms(),
                                cfg_.batch_size, /*with_aux_head=*/false,
                                at_.adversarial && at_.pgd_steps > 0,
                                /*aux_params_loaded=*/0, local,
                                engine().config().mem.device_mem_scale,
                                &up.work);

  nn::Sgd opt(local.parameters_range(0, local.num_atoms()),
              local.gradients_range(0, local.num_atoms()), round_sgd_);
  auto& batches = clients_.batches(task.client, cfg_.batch_size);
  for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
    at_train_batch(local, opt, batches.next(), at_, clients_.rng(task.client));

  up.bytes_down = broadcast_bytes_[arch];
  up.payload = Payload{arch, engine().channel().uplink(local.save_all(),
                                                       &broadcast_[arch],
                                                       &up.bytes_up)};
  return up;
}

void DistillationFAT::apply_update(const fed::TaskSpec& /*task*/,
                                   fed::Upload&& up, fed::ApplyMode mode,
                                   float mix) {
  auto& p = std::any_cast<Payload&>(up.payload);
  if (mode == fed::ApplyMode::kBlend) {
    per_arch_[p.arch].add(prototypes_[p.arch]->save_all(), 1.0f - mix);
    per_arch_[p.arch].add(p.blob, mix);
  } else {
    per_arch_[p.arch].add(p.blob, up.weight);
  }
}

void DistillationFAT::finalize_round(std::int64_t t) {
  clients_.end_round();
  for (std::size_t a = 0; a < prototypes_.size(); ++a) {
    if (per_arch_[a].empty()) continue;  // untouched prototypes keep values
    prototypes_[a]->load_all(per_arch_[a].average());
    per_arch_[a].reset();
  }
  distill(t);  // updates every student prototype
  broadcast_.clear();
}

void DistillationFAT::distill(std::int64_t t) {
  if (!public_batches_)
    public_batches_.emplace(env_->public_set, cfg2_.distill_batch, public_rng_);
  nn::SgdConfig sgd = cfg_.sgd;
  sgd.lr = std::min(cfg2_.distill_lr, lr_at(t));
  sgd.weight_decay = 0.0f;

  // FedET distills only into the large model; FedDF fuses every prototype.
  std::vector<std::size_t> students;
  if (cfg2_.ensemble_transfer) {
    students.push_back(prototypes_.size() - 1);
  } else {
    for (std::size_t a = 0; a < prototypes_.size(); ++a) students.push_back(a);
  }

  for (int it = 0; it < cfg2_.distill_iters; ++it) {
    const auto b = public_batches_->next();
    const std::int64_t n = b.x.dim(0);
    const std::int64_t c = env_->public_set.num_classes;
    // Teacher: mean (FedDF) or confidence-weighted mean (FedET) of the
    // prototypes' softmax outputs.
    Tensor target({n, c});
    Tensor weight_sum({n, 1});
    for (auto& proto : prototypes_) {
      const Tensor probs = softmax(proto->forward(b.x, /*train=*/false));
      for (std::int64_t r = 0; r < n; ++r) {
        float w = 1.0f;
        if (cfg2_.ensemble_transfer) {
          w = 0.0f;
          for (std::int64_t j = 0; j < c; ++j)
            w = std::max(w, probs[r * c + j]);  // teacher confidence
        }
        for (std::int64_t j = 0; j < c; ++j)
          target[r * c + j] += w * probs[r * c + j];
        weight_sum[r] += w;
      }
    }
    for (std::int64_t r = 0; r < n; ++r)
      for (std::int64_t j = 0; j < c; ++j) target[r * c + j] /= weight_sum[r];

    for (const std::size_t s : students) {
      auto& student = *prototypes_[s];
      nn::Sgd opt(student.parameters_range(0, student.num_atoms()),
                  student.gradients_range(0, student.num_atoms()), sgd);
      student.zero_grad_range(0, student.num_atoms());
      const Tensor logits = student.forward(b.x, /*train=*/true);
      const Tensor g = soft_cross_entropy_grad(logits, target);
      student.backward_range(0, student.num_atoms(), g);
      opt.step();
    }
  }
}

}  // namespace fp::baselines
