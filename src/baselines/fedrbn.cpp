#include "baselines/fedrbn.hpp"

#include "fed/budget_exec.hpp"

namespace fp::baselines {

FedRbn::FedRbn(fed::FedEnv& env, FedRbnConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0xb7123),
      cfg2_(cfg),
      model_(cfg.model_spec, init_rng_),
      full_mem_bytes_(sys::module_train_mem_bytes(
          cfg.model_spec, 0, cfg.model_spec.atoms.size(), cfg.fl.batch_size,
          false)),
      clients_(env, cfg.fl.seed) {}

void FedRbn::begin_dispatch(const std::vector<fed::TaskSpec>& tasks) {
  clients_.begin_round(tasks);
  // The snapshot survives across dispatch groups until finalize_round
  // changes the model (async dropout/straggler refills reuse it). Clients
  // train from the blob as the wire codec delivers it.
  if (broadcast_.empty()) {
    broadcast_bytes_ = 0;
    broadcast_ =
        engine().channel().downlink(model_.save_all(), &broadcast_bytes_);
  }
  round_sgd_ = cfg_.sgd;
  if (!tasks.empty()) round_sgd_.lr = tasks.front().lr;

  // Per-client adversarial eligibility is a pure function of the sampled
  // devices; compute it up front so the counters stay in client order.
  can_at_.assign(tasks.size(), 1);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    can_at_[i] = !tasks[i].has_device ||
                 static_cast<double>(tasks[i].device.avail_mem_bytes) *
                         cfg2_.device_mem_scale >=
                     static_cast<double>(full_mem_bytes_);
    ++selections_;
    at_selections_ += can_at_[i];
  }
}

fed::Upload FedRbn::train_client(const fed::TaskSpec& task) {
  const bool can_at = can_at_[task.slot] != 0;
  Rng build_rng(0);  // replica init is overwritten by the broadcast blob
  models::BuiltModel local(model_.spec(), build_rng);
  local.load_all(broadcast_);
  LocalAtConfig at;
  at.epsilon = cfg_.epsilon0;
  at.pgd_steps = can_at ? cfg_.pgd_steps : 0;
  at.adversarial = can_at;
  at.dual_bn = can_at;

  fed::Upload up;
  up.weight = task.weight;
  up.work.atom_begin = 0;
  up.work.atom_end = env_->cost_spec.atoms.size();
  up.work.with_aux = false;
  // Standard training on memory-poor clients: 1 forward + 1 backward and
  // the model may still need swapping if even ST exceeds memory.
  up.work.pgd_steps = can_at ? cfg_.pgd_steps : 0;
  // Budget-aware execution (mem subsystem): dual-BN whole-model training,
  // checkpointed when the bound budget demands it.
  fed::apply_budgeted_execution(model_.spec(), 0, local.num_atoms(),
                                cfg_.batch_size, /*with_aux_head=*/false,
                                /*adversarial=*/can_at,
                                /*aux_params_loaded=*/0, local,
                                engine().config().mem.device_mem_scale,
                                &up.work);

  nn::Sgd opt(local.parameters_range(0, local.num_atoms()),
              local.gradients_range(0, local.num_atoms()), round_sgd_);
  auto& batches = clients_.batches(task.client, cfg_.batch_size);
  for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
    at_train_batch(local, opt, batches.next(), at, clients_.rng(task.client));

  up.bytes_down = broadcast_bytes_;
  up.payload =
      engine().channel().uplink(local.save_all(), &broadcast_, &up.bytes_up);
  return up;
}

void FedRbn::apply_update(const fed::TaskSpec& /*task*/, fed::Upload&& up,
                          fed::ApplyMode mode, float mix) {
  auto& blob = std::any_cast<nn::ParamBlob&>(up.payload);
  if (mode == fed::ApplyMode::kBlend) {
    averager_.add(model_.save_all(), 1.0f - mix);
    averager_.add(blob, mix);
  } else {
    averager_.add(blob, up.weight);
  }
}

void FedRbn::finalize_round(std::int64_t /*t*/) {
  clients_.end_round();
  if (averager_.empty()) return;
  model_.load_all(averager_.average());
  averager_.reset();
  broadcast_.clear();  // model changed: next dispatch re-snapshots
}

fed::RoundRecord FedRbn::evaluate_snapshot(std::int64_t round,
                                           std::int64_t max_samples,
                                           int pgd_steps) {
  attack::RobustEvalConfig ecfg;
  ecfg.epsilon = cfg_.epsilon0;
  ecfg.pgd_steps = pgd_steps;
  ecfg.max_samples = max_samples;
  ecfg.compute = cfg_.compute;
  fed::RoundRecord rec;
  rec.round = round;
  use_adv_bank(false);
  rec.clean_acc = attack::evaluate_clean(model_, env_->test, ecfg.batch_size,
                                         max_samples, ecfg.compute);
  use_adv_bank(true);
  rec.adv_acc = attack::evaluate_pgd(model_, env_->test, ecfg);
  use_adv_bank(false);
  rec.sim_time_s = sim_time().total();
  rec.bytes_up = total_stats().bytes_up;
  rec.bytes_down = total_stats().bytes_down;
  return rec;
}

}  // namespace fp::baselines
