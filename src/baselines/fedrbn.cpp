#include "baselines/fedrbn.hpp"

#include "baselines/local_at.hpp"
#include "core/parallel.hpp"

namespace fp::baselines {

FedRbn::FedRbn(fed::FedEnv& env, FedRbnConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0xb7123),
      cfg2_(cfg),
      model_(cfg.model_spec, init_rng_),
      full_mem_bytes_(sys::module_train_mem_bytes(
          cfg.model_spec, 0, cfg.model_spec.atoms.size(), cfg.fl.batch_size,
          false)),
      clients_(env, cfg.fl.seed) {}

void FedRbn::run_round(std::int64_t t) {
  const auto rc = sample_round();
  const nn::ParamBlob global = model_.save_all();
  nn::SgdConfig sgd = cfg_.sgd;
  sgd.lr = lr_at(t);

  // Per-client adversarial eligibility is a pure function of the sampled
  // devices; compute it up front so the counters stay in client order.
  std::vector<char> can_at(rc.ids.size());
  for (std::size_t i = 0; i < rc.ids.size(); ++i) {
    can_at[i] = rc.devices.empty() ||
                static_cast<double>(rc.devices[i].avail_mem_bytes) *
                        cfg2_.device_mem_scale >=
                    static_cast<double>(full_mem_bytes_);
    ++selections_;
    at_selections_ += can_at[i];
  }

  // Clients train concurrently on private replicas (dual-BN banks travel in
  // the blob); uploads are averaged below in client order.
  std::vector<nn::ParamBlob> uploads(rc.ids.size());
  core::parallel_tasks(static_cast<std::int64_t>(rc.ids.size()), [&](std::int64_t ti) {
    const auto i = static_cast<std::size_t>(ti);
    const std::size_t k = rc.ids[i];
    Rng build_rng(0);  // replica init is overwritten by the broadcast blob
    models::BuiltModel local(model_.spec(), build_rng);
    local.load_all(global);
    LocalAtConfig at;
    at.epsilon = cfg_.epsilon0;
    at.pgd_steps = can_at[i] ? cfg_.pgd_steps : 0;
    at.adversarial = can_at[i];
    at.dual_bn = can_at[i];
    nn::Sgd opt(local.parameters_range(0, local.num_atoms()),
                local.gradients_range(0, local.num_atoms()), sgd);
    auto& batches = clients_.batches(k, cfg_.batch_size);
    for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
      at_train_batch(local, opt, batches.next(), at, clients_.rng(k));
    uploads[i] = local.save_all();
  });

  fed::BlobAverager averager;
  std::vector<fed::ClientWork> work;
  for (std::size_t i = 0; i < rc.ids.size(); ++i) {
    averager.add(uploads[i], env_->weights[rc.ids[i]]);

    fed::ClientWork w;
    w.atom_begin = 0;
    w.atom_end = env_->cost_spec.atoms.size();
    w.with_aux = false;
    // Standard training on memory-poor clients: 1 forward + 1 backward and
    // the model may still need swapping if even ST exceeds memory.
    w.pgd_steps = can_at[i] ? cfg_.pgd_steps : 0;
    work.push_back(w);
  }
  model_.load_all(averager.average());
  if (!rc.devices.empty())
    add_sim_time(fed::simulate_round_time(env_->cost_spec, rc.devices, work,
                                          env_->cost_cfg, cfg_.local_iters));
}

fed::RoundRecord FedRbn::evaluate_snapshot(std::int64_t round,
                                           std::int64_t max_samples,
                                           int pgd_steps) {
  attack::RobustEvalConfig ecfg;
  ecfg.epsilon = cfg_.epsilon0;
  ecfg.pgd_steps = pgd_steps;
  ecfg.max_samples = max_samples;
  fed::RoundRecord rec;
  rec.round = round;
  use_adv_bank(false);
  rec.clean_acc =
      attack::evaluate_clean(model_, env_->test, ecfg.batch_size, max_samples);
  use_adv_bank(true);
  rec.adv_acc = attack::evaluate_pgd(model_, env_->test, ecfg);
  use_adv_bank(false);
  rec.sim_time_s = sim_time().total();
  return rec;
}

}  // namespace fp::baselines
