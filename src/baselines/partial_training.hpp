// Partial-training FAT baselines: HeteroFL-AT (static slice), FedDrop-AT
// (random slice), FedRolex-AT (rolling slice). Each client adversarially
// trains a channel-sliced sub-model whose width ratio matches its available
// memory; the server partial-averages sub-models into the global network.
#pragma once

#include <memory>

#include "baselines/local_at.hpp"
#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"
#include "models/slicing.hpp"

namespace fp::baselines {

struct PartialTrainingConfig {
  fed::FlConfig fl;
  sys::ModelSpec model_spec;
  models::SliceScheme scheme = models::SliceScheme::kStatic;
  /// Device memory multiplier mapping the paper-scale fleet onto the scaled
  /// trainable model (as in FedProphetConfig::device_mem_scale).
  double device_mem_scale = 1.0;
  double min_ratio = 0.25;  ///< floor on the width ratio
  bool adversarial = true;
};

class PartialTrainingFAT final : public fed::FederatedAlgorithm {
 public:
  PartialTrainingFAT(fed::FedEnv& env, PartialTrainingConfig cfg);

  std::string name() const override;
  models::BuiltModel& global_model() override { return model_; }

  /// Width ratio a device budget affords (memory scales ~ratio for the
  /// activation-dominated regime): ratio = min(1, R_k / R_full).
  double ratio_for_mem(std::int64_t avail_mem_bytes) const;

 private:
  // RoundEngine hooks: slice plans are drawn sequentially in slot order at
  // dispatch (they consume a shared per-round RNG); each client trains its
  // sliced sub-model; uploads scatter-accumulate into the global network.
  void begin_dispatch(const std::vector<fed::TaskSpec>& tasks) override;
  fed::Upload train_client(const fed::TaskSpec& task) override;
  void apply_update(const fed::TaskSpec& task, fed::Upload&& up,
                    fed::ApplyMode mode, float mix) override;
  void finalize_round(std::int64_t t) override;

  /// Wire payload: the trained sub-model plus the plan that extracted it
  /// (travels with the upload — dispatch state may be reused before an async
  /// update lands).
  struct Payload {
    models::SlicePlan plan;
    std::shared_ptr<models::BuiltModel> trained;
  };

  Rng init_rng_;
  PartialTrainingConfig cfg2_;
  models::BuiltModel model_;
  std::int64_t full_mem_bytes_;
  fed::ClientPool clients_;

  // Dispatch/aggregation state owned by the engine pipeline.
  std::vector<double> ratios_;             ///< per-slot width ratio
  std::vector<models::SlicePlan> plans_;   ///< per-slot slice plan
  Rng slice_rng_{0};                       ///< per-round shared plan stream
  std::int64_t slice_rng_round_ = -1;
  LocalAtConfig at_;
  nn::SgdConfig round_sgd_;
  fed::PartialAccumulator acc_;
};

}  // namespace fp::baselines
