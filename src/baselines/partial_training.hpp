// Partial-training FAT baselines: HeteroFL-AT (static slice), FedDrop-AT
// (random slice), FedRolex-AT (rolling slice). Each client adversarially
// trains a channel-sliced sub-model whose width ratio matches its available
// memory; the server partial-averages sub-models into the global network.
#pragma once

#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"
#include "models/slicing.hpp"

namespace fp::baselines {

struct PartialTrainingConfig {
  fed::FlConfig fl;
  sys::ModelSpec model_spec;
  models::SliceScheme scheme = models::SliceScheme::kStatic;
  /// Device memory multiplier mapping the paper-scale fleet onto the scaled
  /// trainable model (as in FedProphetConfig::device_mem_scale).
  double device_mem_scale = 1.0;
  double min_ratio = 0.25;  ///< floor on the width ratio
  bool adversarial = true;
};

class PartialTrainingFAT final : public fed::FederatedAlgorithm {
 public:
  PartialTrainingFAT(fed::FedEnv& env, PartialTrainingConfig cfg);

  std::string name() const override;
  models::BuiltModel& global_model() override { return model_; }
  void run_round(std::int64_t t) override;

  /// Width ratio a device budget affords (memory scales ~ratio for the
  /// activation-dominated regime): ratio = min(1, R_k / R_full).
  double ratio_for_mem(std::int64_t avail_mem_bytes) const;

 private:
  Rng init_rng_;
  PartialTrainingConfig cfg2_;
  models::BuiltModel model_;
  std::int64_t full_mem_bytes_;
  fed::ClientPool clients_;
};

}  // namespace fp::baselines
