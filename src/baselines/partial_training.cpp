#include "baselines/partial_training.hpp"

#include <algorithm>

#include "fed/budget_exec.hpp"

namespace fp::baselines {

PartialTrainingFAT::PartialTrainingFAT(fed::FedEnv& env, PartialTrainingConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0x9a27),
      cfg2_(cfg),
      model_(cfg.model_spec, init_rng_),
      full_mem_bytes_(sys::module_train_mem_bytes(
          cfg.model_spec, 0, cfg.model_spec.atoms.size(), cfg.fl.batch_size,
          /*with_aux_head=*/false)),
      clients_(env, cfg.fl.seed),
      acc_(model_) {
  acc_.reset();
}

std::string PartialTrainingFAT::name() const {
  switch (cfg2_.scheme) {
    case models::SliceScheme::kStatic: return "HeteroFL-AT";
    case models::SliceScheme::kRandom: return "FedDrop-AT";
    case models::SliceScheme::kRolling: return "FedRolex-AT";
  }
  return "PartialTraining-AT";
}

double PartialTrainingFAT::ratio_for_mem(std::int64_t avail_mem_bytes) const {
  const double scaled =
      static_cast<double>(avail_mem_bytes) * cfg2_.device_mem_scale;
  const double r = scaled / static_cast<double>(full_mem_bytes_);
  return std::clamp(r, cfg2_.min_ratio, 1.0);
}

void PartialTrainingFAT::begin_dispatch(const std::vector<fed::TaskSpec>& tasks) {
  clients_.begin_round(tasks);
  at_ = LocalAtConfig{};
  at_.epsilon = cfg_.epsilon0;
  at_.pgd_steps = cfg2_.adversarial ? cfg_.pgd_steps : 0;
  at_.adversarial = cfg2_.adversarial;
  round_sgd_ = cfg_.sgd;
  if (!tasks.empty()) round_sgd_.lr = tasks.front().lr;

  // Slice plans consume the shared per-round RNG, so draw them sequentially
  // in slot order before the training fans out. The stream is reseeded once
  // per round and persists across dispatch groups of the same round, so
  // async single-client refills keep drawing fresh random masks instead of
  // repeating the round's first one.
  const std::int64_t t = tasks.empty() ? 0 : tasks.front().round;
  if (t != slice_rng_round_) {
    slice_rng_ = Rng(cfg_.seed + 31 * static_cast<std::uint64_t>(t));
    slice_rng_round_ = t;
  }
  ratios_.resize(tasks.size());
  plans_.clear();
  plans_.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    ratios_[i] = tasks[i].has_device
                     ? ratio_for_mem(tasks[i].device.avail_mem_bytes)
                     : 1.0;
    plans_.push_back(models::make_slice_plan(model_.spec(), ratios_[i],
                                             cfg2_.scheme, t, slice_rng_));
  }
}

fed::Upload PartialTrainingFAT::train_client(const fed::TaskSpec& task) {
  Rng build_rng(cfg_.seed + 77 * static_cast<std::uint64_t>(task.round) +
                task.client);
  auto sliced = std::make_shared<models::BuiltModel>(
      plans_[task.slot].sliced_spec, build_rng);
  models::gather_weights(model_.spec(), plans_[task.slot], model_, *sliced);

  fed::Upload up;
  // The server ships only the sliced sub-model, so the wire round-trip is
  // sized (and lossy-coded) on the slice, not the full network. Under a
  // lossless codec the round-trips are bit-exact no-ops: count the dense
  // frames (down and up carry the same slice-sized blob) and skip the
  // serialize/reload passes on this hot path.
  const auto& channel = engine().channel();
  nn::ParamBlob received;
  if (channel.lossless()) {
    channel.downlink(sliced->save_all(), &up.bytes_down);
    up.bytes_up = up.bytes_down;
  } else {
    received = channel.downlink(sliced->save_all(), &up.bytes_down);
    sliced->load_all(received);
  }

  // Budget-aware execution (mem subsystem): the slice usually fits, but a
  // tight enforced budget can still demand checkpointed training of it.
  fed::apply_budgeted_execution(sliced->spec(), 0, sliced->num_atoms(),
                                cfg_.batch_size, /*with_aux_head=*/false,
                                at_.adversarial && at_.pgd_steps > 0,
                                /*aux_params_loaded=*/0, *sliced,
                                engine().config().mem.device_mem_scale,
                                &up.work);

  nn::Sgd opt(sliced->parameters_range(0, sliced->num_atoms()),
              sliced->gradients_range(0, sliced->num_atoms()), round_sgd_);
  auto& batches = clients_.batches(task.client, cfg_.batch_size);
  for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
    at_train_batch(*sliced, opt, batches.next(), at_, clients_.rng(task.client));

  if (!channel.lossless())
    sliced->load_all(
        channel.uplink(sliced->save_all(), &received, &up.bytes_up));

  up.weight = task.weight;
  up.work.atom_begin = 0;
  up.work.atom_end = env_->cost_spec.atoms.size();
  up.work.with_aux = false;
  up.work.pgd_steps = at_.pgd_steps;
  up.work.mem_scale = ratios_[task.slot];  // sub-model fits: no swapping
  up.work.flops_scale = ratios_[task.slot] * ratios_[task.slot];
  up.payload = Payload{plans_[task.slot], std::move(sliced)};
  return up;
}

void PartialTrainingFAT::apply_update(const fed::TaskSpec& /*task*/,
                                      fed::Upload&& up, fed::ApplyMode mode,
                                      float mix) {
  auto& p = std::any_cast<Payload&>(up.payload);
  if (mode == fed::ApplyMode::kBlend) {
    // Elements inside the slice land as (1-mix)*old + mix*new; elements the
    // client never trained cancel to their previous value on finalize.
    for (std::size_t a = 0; a < model_.num_atoms(); ++a) {
      acc_.add_dense_atom(model_, a, 1.0f - mix);
      acc_.add_sliced_atom(p.plan, *p.trained, a, mix);
    }
  } else {
    for (std::size_t a = 0; a < model_.num_atoms(); ++a)
      acc_.add_sliced_atom(p.plan, *p.trained, a, up.weight);
  }
}

void PartialTrainingFAT::finalize_round(std::int64_t /*t*/) {
  clients_.end_round();
  acc_.finalize_into(model_);
  acc_.reset();
}

}  // namespace fp::baselines
