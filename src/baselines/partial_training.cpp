#include "baselines/partial_training.hpp"

#include <algorithm>
#include <memory>

#include "baselines/local_at.hpp"
#include "core/parallel.hpp"

namespace fp::baselines {

PartialTrainingFAT::PartialTrainingFAT(fed::FedEnv& env, PartialTrainingConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0x9a27),
      cfg2_(cfg),
      model_(cfg.model_spec, init_rng_),
      full_mem_bytes_(sys::module_train_mem_bytes(
          cfg.model_spec, 0, cfg.model_spec.atoms.size(), cfg.fl.batch_size,
          /*with_aux_head=*/false)),
      clients_(env, cfg.fl.seed) {}

std::string PartialTrainingFAT::name() const {
  switch (cfg2_.scheme) {
    case models::SliceScheme::kStatic: return "HeteroFL-AT";
    case models::SliceScheme::kRandom: return "FedDrop-AT";
    case models::SliceScheme::kRolling: return "FedRolex-AT";
  }
  return "PartialTraining-AT";
}

double PartialTrainingFAT::ratio_for_mem(std::int64_t avail_mem_bytes) const {
  const double scaled =
      static_cast<double>(avail_mem_bytes) * cfg2_.device_mem_scale;
  const double r = scaled / static_cast<double>(full_mem_bytes_);
  return std::clamp(r, cfg2_.min_ratio, 1.0);
}

void PartialTrainingFAT::run_round(std::int64_t t) {
  const auto rc = sample_round();
  fed::PartialAccumulator acc(model_);
  acc.reset();

  LocalAtConfig at;
  at.epsilon = cfg_.epsilon0;
  at.pgd_steps = cfg2_.adversarial ? cfg_.pgd_steps : 0;
  at.adversarial = cfg2_.adversarial;
  nn::SgdConfig sgd = cfg_.sgd;
  sgd.lr = lr_at(t);

  // Slice plans consume the shared per-round RNG, so draw them sequentially
  // in client order before fanning the training out.
  Rng slice_rng(cfg_.seed + 31 * static_cast<std::uint64_t>(t));
  std::vector<double> ratios(rc.ids.size());
  std::vector<models::SlicePlan> plans;
  plans.reserve(rc.ids.size());
  for (std::size_t i = 0; i < rc.ids.size(); ++i) {
    ratios[i] = rc.devices.empty() ? 1.0
                                   : ratio_for_mem(rc.devices[i].avail_mem_bytes);
    plans.push_back(models::make_slice_plan(model_.spec(), ratios[i],
                                            cfg2_.scheme, t, slice_rng));
  }

  // Clients train their sliced sub-models concurrently; gather_weights only
  // reads the global model. Scatter-accumulation happens below in client
  // order, so rounds are bit-identical for any FP_NUM_THREADS.
  std::vector<std::unique_ptr<models::BuiltModel>> trained(rc.ids.size());
  core::parallel_tasks(static_cast<std::int64_t>(rc.ids.size()), [&](std::int64_t ti) {
    const auto i = static_cast<std::size_t>(ti);
    const std::size_t k = rc.ids[i];
    Rng build_rng(cfg_.seed + 77 * static_cast<std::uint64_t>(t) + k);
    auto sliced =
        std::make_unique<models::BuiltModel>(plans[i].sliced_spec, build_rng);
    models::gather_weights(model_.spec(), plans[i], model_, *sliced);

    nn::Sgd opt(sliced->parameters_range(0, sliced->num_atoms()),
                sliced->gradients_range(0, sliced->num_atoms()), sgd);
    auto& batches = clients_.batches(k, cfg_.batch_size);
    for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
      at_train_batch(*sliced, opt, batches.next(), at, clients_.rng(k));
    trained[i] = std::move(sliced);
  });

  std::vector<fed::ClientWork> work;
  for (std::size_t i = 0; i < rc.ids.size(); ++i) {
    for (std::size_t a = 0; a < model_.num_atoms(); ++a)
      acc.add_sliced_atom(plans[i], *trained[i], a, env_->weights[rc.ids[i]]);

    fed::ClientWork w;
    w.atom_begin = 0;
    w.atom_end = env_->cost_spec.atoms.size();
    w.with_aux = false;
    w.pgd_steps = at.pgd_steps;
    w.mem_scale = ratios[i];      // sub-model fits: no swapping
    w.flops_scale = ratios[i] * ratios[i];
    work.push_back(w);
  }
  acc.finalize_into(model_);
  if (!rc.devices.empty())
    add_sim_time(fed::simulate_round_time(env_->cost_spec, rc.devices, work,
                                          env_->cost_cfg, cfg_.local_iters));
}

}  // namespace fp::baselines
