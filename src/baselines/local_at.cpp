#include "baselines/local_at.hpp"

#include "attack/attacks.hpp"
#include "tensor/ops.hpp"

namespace fp::baselines {

namespace {
/// CE loss/grad through the whole model in training mode with frozen running
/// stats (attack passes must not pollute BN statistics).
float whole_model_loss_grad(models::BuiltModel& model, const Tensor& x,
                            const std::vector<std::int64_t>& y, Tensor* grad_x,
                            bool track_stats) {
  model.set_bn_tracking(track_stats);
  const Tensor logits = model.forward(x, /*train=*/true);
  const float loss = cross_entropy(logits, y);
  if (grad_x)
    *grad_x =
        model.backward_range(0, model.num_atoms(), cross_entropy_grad(logits, y));
  model.set_bn_tracking(true);
  return loss;
}
}  // namespace

float at_train_batch(models::BuiltModel& model, nn::Sgd& optimizer,
                     const data::Batch& batch, const LocalAtConfig& cfg, Rng& rng) {
  Tensor x_train = batch.x;
  if (cfg.adversarial && cfg.pgd_steps > 0 && cfg.epsilon > 0.0f) {
    attack::PgdConfig a;
    a.epsilon = cfg.epsilon;
    a.steps = cfg.pgd_steps;
    if (cfg.dual_bn) model.use_bn_bank(1);
    auto fn = [&model](const Tensor& xx, const std::vector<std::int64_t>& yy,
                       Tensor* g) {
      return whole_model_loss_grad(model, xx, yy, g, /*track_stats=*/false);
    };
    x_train = attack::pgd(fn, batch.x, batch.y, a, rng);
    if (cfg.dual_bn) model.use_bn_bank(0);
  }

  model.zero_grad_range(0, model.num_atoms());
  float loss;
  if (cfg.dual_bn && cfg.adversarial) {
    // FedRBN-style: clean pass through bank 0, adversarial through bank 1,
    // gradients accumulate and the losses average.
    model.use_bn_bank(0);
    const Tensor clean_logits = model.forward(batch.x, true);
    const float clean_loss = cross_entropy(clean_logits, batch.y);
    {
      Tensor g = cross_entropy_grad(clean_logits, batch.y);
      g.scale_(0.5f);
      model.backward_range(0, model.num_atoms(), g);
    }
    model.use_bn_bank(1);
    const Tensor adv_logits = model.forward(x_train, true);
    const float adv_loss = cross_entropy(adv_logits, batch.y);
    Tensor g = cross_entropy_grad(adv_logits, batch.y);
    g.scale_(0.5f);
    model.backward_range(0, model.num_atoms(), g);
    model.use_bn_bank(0);
    loss = 0.5f * (clean_loss + adv_loss);
  } else {
    Tensor unused;
    loss = whole_model_loss_grad(model, x_train, batch.y, &unused, true);
  }
  optimizer.step();
  return loss;
}

}  // namespace fp::baselines
