// Knowledge-distillation FAT baselines.
//
// FedDF-AT (Lin et al. 2020): clients train the largest model from a family
// that fits their memory; the server FedAvg-aggregates per architecture and
// then fuses knowledge across architectures by ensemble distillation on a
// small public dataset (soft cross-entropy against the mean teacher).
//
// FedET-AT (Cho et al. 2022): ensemble knowledge transfer into the single
// large model, with per-sample confidence weighting of the teachers
// (simplified from the paper's diversity/variance weighting; DESIGN.md §5).
#pragma once

#include "baselines/local_at.hpp"
#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"

namespace fp::baselines {

struct DistillationConfig {
  fed::FlConfig fl;
  std::vector<sys::ModelSpec> family;  ///< ascending memory requirement
  bool ensemble_transfer = false;      ///< false = FedDF, true = FedET
  int distill_iters = 16;              ///< paper: 128 (§B.4)
  std::int64_t distill_batch = 32;
  float distill_lr = 0.005f;
  double device_mem_scale = 1.0;
  bool adversarial = true;
};

class DistillationFAT final : public fed::FederatedAlgorithm {
 public:
  DistillationFAT(fed::FedEnv& env, DistillationConfig cfg);

  std::string name() const override {
    return cfg2_.ensemble_transfer ? "FedET-AT" : "FedDF-AT";
  }
  /// The deployed model is the largest prototype.
  models::BuiltModel& global_model() override { return *prototypes_.back(); }

  /// Largest family index whose full-training memory fits the budget.
  std::size_t arch_for_mem(std::int64_t avail_mem_bytes) const;

 private:
  // RoundEngine hooks: each client trains the largest family architecture
  // that fits its memory; uploads FedAvg per architecture, then ensemble
  // distillation fuses knowledge across prototypes.
  void begin_dispatch(const std::vector<fed::TaskSpec>& tasks) override;
  fed::Upload train_client(const fed::TaskSpec& task) override;
  void apply_update(const fed::TaskSpec& task, fed::Upload&& up,
                    fed::ApplyMode mode, float mix) override;
  void finalize_round(std::int64_t t) override;

  void distill(std::int64_t t);

  /// Wire payload: which prototype the blob belongs to.
  struct Payload {
    std::size_t arch = 0;
    nn::ParamBlob blob;
  };

  Rng init_rng_;
  DistillationConfig cfg2_;
  std::vector<std::unique_ptr<models::BuiltModel>> prototypes_;
  std::vector<std::int64_t> family_mem_;
  fed::ClientPool clients_;
  Rng public_rng_;
  std::optional<data::BatchIterator> public_batches_;

  // Dispatch/aggregation state owned by the engine pipeline.
  std::vector<nn::ParamBlob> broadcast_;  ///< one snapshot per prototype
  std::vector<std::int64_t> broadcast_bytes_;  ///< wire size per prototype
  std::vector<std::size_t> archs_;        ///< per-slot architecture choice
  LocalAtConfig at_;
  nn::SgdConfig round_sgd_;
  std::vector<fed::BlobAverager> per_arch_;
};

}  // namespace fp::baselines
