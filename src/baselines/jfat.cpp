#include "baselines/jfat.hpp"

#include "core/parallel.hpp"

namespace fp::baselines {

JFat::JFat(fed::FedEnv& env, JFatConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0x1fa7),
      model_(std::move(cfg.model_spec), init_rng_),
      adversarial_(cfg.adversarial),
      clients_(env, cfg.fl.seed) {}

void JFat::run_round(std::int64_t t) {
  const auto rc = sample_round();
  const nn::ParamBlob global = model_.save_all();

  LocalAtConfig at;
  at.epsilon = cfg_.epsilon0;
  at.pgd_steps = adversarial_ ? cfg_.pgd_steps : 0;
  at.adversarial = adversarial_;
  nn::SgdConfig sgd = cfg_.sgd;
  sgd.lr = lr_at(t);

  // Clients train concurrently on private replicas of the broadcast model;
  // each task touches only its own client's RNG/batch state. Uploads are
  // averaged below in client order, so rounds are bit-identical for any
  // FP_NUM_THREADS.
  std::vector<nn::ParamBlob> uploads(rc.ids.size());
  core::parallel_tasks(static_cast<std::int64_t>(rc.ids.size()), [&](std::int64_t ti) {
    const auto i = static_cast<std::size_t>(ti);
    const std::size_t k = rc.ids[i];
    Rng build_rng(0);  // replica init is overwritten by the broadcast blob
    models::BuiltModel local(model_.spec(), build_rng);
    local.load_all(global);
    nn::Sgd opt(local.parameters_range(0, local.num_atoms()),
                local.gradients_range(0, local.num_atoms()), sgd);
    auto& batches = clients_.batches(k, cfg_.batch_size);
    for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
      at_train_batch(local, opt, batches.next(), at, clients_.rng(k));
    uploads[i] = local.save_all();
  });

  fed::BlobAverager averager;
  std::vector<fed::ClientWork> work;
  for (std::size_t i = 0; i < rc.ids.size(); ++i) {
    averager.add(uploads[i], env_->weights[rc.ids[i]]);

    fed::ClientWork w;
    w.atom_begin = 0;
    w.atom_end = env_->cost_spec.atoms.size();
    w.with_aux = false;
    w.pgd_steps = at.pgd_steps;
    work.push_back(w);
  }
  model_.load_all(averager.average());
  if (!rc.devices.empty())
    add_sim_time(fed::simulate_round_time(env_->cost_spec, rc.devices, work,
                                          env_->cost_cfg, cfg_.local_iters));
}

}  // namespace fp::baselines
