#include "baselines/jfat.hpp"

namespace fp::baselines {

JFat::JFat(fed::FedEnv& env, JFatConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0x1fa7),
      model_(std::move(cfg.model_spec), init_rng_),
      adversarial_(cfg.adversarial),
      clients_(env, cfg.fl.seed) {}

void JFat::run_round(std::int64_t t) {
  const auto rc = sample_round();
  const nn::ParamBlob global = model_.save_all();

  fed::BlobAverager averager;
  LocalAtConfig at;
  at.epsilon = cfg_.epsilon0;
  at.pgd_steps = adversarial_ ? cfg_.pgd_steps : 0;
  at.adversarial = adversarial_;
  nn::SgdConfig sgd = cfg_.sgd;
  sgd.lr = lr_at(t);

  std::vector<fed::ClientWork> work;
  for (const std::size_t k : rc.ids) {
    model_.load_all(global);
    nn::Sgd opt(model_.parameters_range(0, model_.num_atoms()),
                model_.gradients_range(0, model_.num_atoms()), sgd);
    auto& batches = clients_.batches(k, cfg_.batch_size);
    for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
      at_train_batch(model_, opt, batches.next(), at, clients_.rng(k));
    averager.add(model_.save_all(), env_->weights[k]);

    fed::ClientWork w;
    w.atom_begin = 0;
    w.atom_end = env_->cost_spec.atoms.size();
    w.with_aux = false;
    w.pgd_steps = at.pgd_steps;
    work.push_back(w);
  }
  model_.load_all(averager.average());
  if (!rc.devices.empty())
    add_sim_time(fed::simulate_round_time(env_->cost_spec, rc.devices, work,
                                          env_->cost_cfg, cfg_.local_iters));
}

}  // namespace fp::baselines
