#include "baselines/jfat.hpp"

#include "fed/budget_exec.hpp"

namespace fp::baselines {

JFat::JFat(fed::FedEnv& env, JFatConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0x1fa7),
      model_(std::move(cfg.model_spec), init_rng_),
      adversarial_(cfg.adversarial),
      clients_(env, cfg.fl.seed) {}

void JFat::begin_dispatch(const std::vector<fed::TaskSpec>& tasks) {
  clients_.begin_round(tasks);
  // The snapshot survives across dispatch groups until finalize_round
  // changes the model (async dropout/straggler refills reuse it). Clients
  // train from the blob as the wire codec delivers it.
  if (broadcast_.empty()) {
    broadcast_bytes_ = 0;
    const auto& channel = engine().channel();
    if (engine().remote_active()) {
      // Distributed root: capture the encoded broadcast so net_save_context
      // ships the exact message; decoding it here is bit- and byte-identical
      // to the fused downlink (identity framing round-trips raw float bits,
      // compressed framing is the same encode+decode expression).
      net_bcast_msg_ = channel.encode_down(model_.save_all());
      broadcast_bytes_ += net_bcast_msg_.wire_bytes();
      broadcast_ = channel.decode(net_bcast_msg_);
    } else {
      broadcast_ = channel.downlink(model_.save_all(), &broadcast_bytes_);
    }
  }
  at_ = LocalAtConfig{};
  at_.epsilon = cfg_.epsilon0;
  at_.pgd_steps = adversarial_ ? cfg_.pgd_steps : 0;
  at_.adversarial = adversarial_;
  round_sgd_ = cfg_.sgd;
  if (!tasks.empty()) round_sgd_.lr = tasks.front().lr;
}

fed::Upload JFat::train_client(const fed::TaskSpec& task) {
  Rng build_rng(0);  // replica init is overwritten by the broadcast blob
  models::BuiltModel local(model_.spec(), build_rng);
  local.load_all(broadcast_);

  fed::Upload up;
  up.weight = task.weight;
  up.work.atom_begin = 0;
  up.work.atom_end = env_->cost_spec.atoms.size();
  up.work.with_aux = false;
  up.work.pgd_steps = at_.pgd_steps;
  // Budget-aware execution (mem subsystem): whole-model adversarial training
  // is the method that overruns client memory, so plan the step's peak and
  // checkpoint when the bound budget demands it. jFAT is priced on the
  // paper-shape cost spec, hence the device_mem_scale mapping.
  fed::apply_budgeted_execution(model_.spec(), 0, local.num_atoms(),
                                cfg_.batch_size, /*with_aux_head=*/false,
                                at_.adversarial && at_.pgd_steps > 0,
                                /*aux_params_loaded=*/0, local,
                                engine().config().mem.device_mem_scale,
                                &up.work);

  nn::Sgd opt(local.parameters_range(0, local.num_atoms()),
              local.gradients_range(0, local.num_atoms()), round_sgd_);
  auto& batches = clients_.batches(task.client, cfg_.batch_size);
  for (std::int64_t it = 0; it < cfg_.local_iters; ++it)
    at_train_batch(local, opt, batches.next(), at_, clients_.rng(task.client));

  up.bytes_down = broadcast_bytes_;
  // Uplink through the engine's channel: the server aggregates the update as
  // the codec decodes it (delta codecs reference the broadcast both ends hold).
  if (net_worker_) {
    // Worker mode: stage the ENCODED message — the root decodes it against
    // its identical broadcast reference, so skipping the local decode loses
    // nothing and the root-side blob matches the fused uplink bit-for-bit.
    comm::WireMessage msg =
        engine().channel().encode_up(local.save_all(), &broadcast_);
    up.bytes_up += msg.wire_bytes();
    up.payload = std::move(msg);
  } else {
    up.payload =
        engine().channel().uplink(local.save_all(), &broadcast_, &up.bytes_up);
  }
  return up;
}

// ---- Distributed-runtime hooks (DESIGN.md §10) ------------------------------

void JFat::net_save_context(comm::FrameWriter& out) const {
  out.wire_msg(net_bcast_msg_);
  out.i64(broadcast_bytes_);
  out.f32(round_sgd_.lr);
}

void JFat::net_load_context(comm::FrameReader& in) {
  broadcast_ = engine().channel().decode(in.wire_msg());
  broadcast_bytes_ = in.i64();
  at_ = LocalAtConfig{};
  at_.epsilon = cfg_.epsilon0;
  at_.pgd_steps = adversarial_ ? cfg_.pgd_steps : 0;
  at_.adversarial = adversarial_;
  round_sgd_ = cfg_.sgd;
  round_sgd_.lr = in.f32();
}

void JFat::net_begin_group(const std::vector<fed::TaskSpec>& owned) {
  // Pool bookkeeping over the OWNED tasks only: this worker's per-client
  // dispatch counts advance exactly as the single-process run's do.
  clients_.begin_round(owned);
}

void JFat::net_end_group() { clients_.end_round(); }

void JFat::net_encode_upload(const fed::Upload& up,
                             comm::FrameWriter& out) const {
  write_upload_base(up, out);
  if (up.payload.type() == typeid(comm::WireMessage)) {
    out.u8(1);  // channel-encoded payload
    out.wire_msg(std::any_cast<const comm::WireMessage&>(up.payload));
  } else {
    out.u8(0);  // dense fp32 payload (net.codec=identity)
    out.blob(std::any_cast<const nn::ParamBlob&>(up.payload));
  }
}

fed::Upload JFat::net_decode_upload(const fed::TaskSpec& /*task*/,
                                    comm::FrameReader& in) {
  fed::Upload up;
  read_upload_base(up, in);
  if (in.u8() != 0)
    up.payload = engine().channel().decode(in.wire_msg(), &broadcast_);
  else
    up.payload = in.blob();
  return up;
}

void JFat::apply_update(const fed::TaskSpec& /*task*/, fed::Upload&& up,
                        fed::ApplyMode mode, float mix) {
  auto& blob = std::any_cast<nn::ParamBlob&>(up.payload);
  if (mode == fed::ApplyMode::kBlend) {
    averager_.add(model_.save_all(), 1.0f - mix);
    averager_.add(blob, mix);
  } else {
    averager_.add(blob, up.weight);
  }
}

void JFat::finalize_round(std::int64_t /*t*/) {
  clients_.end_round();
  if (averager_.empty()) return;
  model_.load_all(averager_.average());
  averager_.reset();
  broadcast_.clear();  // model changed: next dispatch re-snapshots
}

}  // namespace fp::baselines
