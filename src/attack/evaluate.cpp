#include "attack/evaluate.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace fp::attack {

namespace {
std::int64_t eval_count(const data::Dataset& test, std::int64_t max_samples) {
  return max_samples > 0 ? std::min(max_samples, test.size()) : test.size();
}

/// Marks correctly classified samples (eval mode). This forward is pure
/// inference, so it runs under the caller's compute mode (int8 / Winograd
/// when configured); attack-generation forwards do not.
std::vector<bool> correct_mask(models::BuiltModel& model, const Tensor& x,
                               const std::vector<std::int64_t>& y,
                               const compute::ComputeConfig& cc) {
  const compute::InferenceScope scope(cc);
  const Tensor logits = model.forward(x, /*train=*/false);
  const auto preds = logits.argmax_rows();
  std::vector<bool> ok(preds.size());
  for (std::size_t i = 0; i < preds.size(); ++i) ok[i] = preds[i] == y[i];
  return ok;
}
}  // namespace

LossGradFn model_ce_lossgrad(models::BuiltModel& model) {
  return [&model](const Tensor& x, const std::vector<std::int64_t>& y,
                  Tensor* grad_x) {
    const Tensor logits = model.forward(x, /*train=*/false);
    const float loss = cross_entropy(logits, y);
    if (grad_x) {
      const Tensor glogits = cross_entropy_grad(logits, y);
      *grad_x = model.backward_range(0, model.num_atoms(), glogits);
    }
    return loss;
  };
}

LossGradFn model_dlr_lossgrad(models::BuiltModel& model) {
  return [&model](const Tensor& x, const std::vector<std::int64_t>& y,
                  Tensor* grad_x) {
    const Tensor logits = model.forward(x, /*train=*/false);
    const float loss = dlr_loss(logits, y);
    if (grad_x) {
      const Tensor glogits = dlr_loss_grad(logits, y);
      *grad_x = model.backward_range(0, model.num_atoms(), glogits);
    }
    return loss;
  };
}

double evaluate_clean(models::BuiltModel& model, const data::Dataset& test,
                      std::int64_t batch_size, std::int64_t max_samples,
                      const compute::ComputeConfig& compute) {
  obs::PhaseTimer eval_phase(obs::Phase::kEval);
  FP_TRACE_SCOPE("evaluate_clean", "eval");
  const std::int64_t n = eval_count(test, max_samples);
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const auto b = data::take_batch(test, start, std::min(batch_size, n - start));
    const auto mask = correct_mask(model, b.x, b.y, compute);
    for (const bool ok : mask) correct += ok;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double evaluate_pgd(models::BuiltModel& model, const data::Dataset& test,
                    const RobustEvalConfig& cfg) {
  obs::PhaseTimer eval_phase(obs::Phase::kEval);
  FP_TRACE_SCOPE("evaluate_pgd", "eval");
  Rng rng(cfg.seed);
  const std::int64_t n = eval_count(test, cfg.max_samples);
  PgdConfig pgd_cfg;
  pgd_cfg.epsilon = cfg.epsilon;
  pgd_cfg.steps = cfg.pgd_steps;
  auto fn = model_ce_lossgrad(model);
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += cfg.batch_size) {
    const auto b =
        data::take_batch(test, start, std::min(cfg.batch_size, n - start));
    const Tensor x_adv = pgd(fn, b.x, b.y, pgd_cfg, rng);
    const auto mask = correct_mask(model, x_adv, b.y, cfg.compute);
    for (const bool ok : mask) correct += ok;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

RobustEvalResult evaluate_robustness(models::BuiltModel& model,
                                     const data::Dataset& test,
                                     const RobustEvalConfig& cfg) {
  obs::PhaseTimer eval_phase(obs::Phase::kEval);
  FP_TRACE_SCOPE("evaluate_robustness", "eval");
  RobustEvalResult result;
  result.clean_acc =
      evaluate_clean(model, test, cfg.batch_size, cfg.max_samples, cfg.compute);
  result.pgd_acc = evaluate_pgd(model, test, cfg);

  // AutoAttackLite: a sample is robust only if it survives APGD-CE and
  // APGD-DLR under every restart.
  Rng rng(cfg.seed + 1);
  const std::int64_t n = eval_count(test, cfg.max_samples);
  PgdConfig apgd_cfg;
  apgd_cfg.epsilon = cfg.epsilon;
  apgd_cfg.steps = cfg.aa_steps;
  auto ce_fn = model_ce_lossgrad(model);
  auto dlr_fn = model_dlr_lossgrad(model);
  const bool use_dlr = test.num_classes >= 3;

  std::int64_t robust = 0;
  for (std::int64_t start = 0; start < n; start += cfg.batch_size) {
    const auto b =
        data::take_batch(test, start, std::min(cfg.batch_size, n - start));
    auto surviving = correct_mask(model, b.x, b.y, cfg.compute);
    for (int restart = 0; restart < cfg.aa_restarts; ++restart) {
      apgd_cfg.random_start = restart > 0;
      for (const auto* fn : {&ce_fn, use_dlr ? &dlr_fn : nullptr}) {
        if (!fn) continue;
        if (std::none_of(surviving.begin(), surviving.end(),
                         [](bool v) { return v; }))
          break;
        const Tensor x_adv = apgd(*fn, b.x, b.y, apgd_cfg, rng);
        const auto mask = correct_mask(model, x_adv, b.y, cfg.compute);
        for (std::size_t i = 0; i < surviving.size(); ++i)
          surviving[i] = surviving[i] && mask[i];
      }
    }
    for (const bool ok : surviving) robust += ok;
  }
  result.aa_acc = static_cast<double>(robust) / static_cast<double>(n);
  return result;
}

}  // namespace fp::attack
