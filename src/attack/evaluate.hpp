// Robustness evaluation harness: clean accuracy, PGD-k accuracy, and
// AutoAttackLite accuracy (APGD-CE + APGD-DLR with restarts; a sample counts
// as robust only if it survives every attack) — the paper's three metrics
// (Clean Acc. / PGD Acc. / AA Acc., §7.1).
#pragma once

#include "attack/attacks.hpp"
#include "data/dataset.hpp"
#include "models/built_model.hpp"
#include "tensor/compute_mode.hpp"

namespace fp::attack {

/// Eval-mode cross-entropy loss/grad of a full model (input = images).
LossGradFn model_ce_lossgrad(models::BuiltModel& model);
/// Eval-mode DLR loss/grad (needs >= 3 classes).
LossGradFn model_dlr_lossgrad(models::BuiltModel& model);

struct RobustEvalConfig {
  float epsilon = 8.0f / 255.0f;
  int pgd_steps = 20;       ///< PGD-20, paper §7.1
  int aa_steps = 20;        ///< APGD iterations per attack
  int aa_restarts = 2;      ///< random restarts per APGD attack
  std::int64_t batch_size = 100;
  /// Cap on evaluated samples (<=0 = whole set); attacks are expensive on CPU.
  std::int64_t max_samples = -1;
  std::uint64_t seed = 99;
  /// Kernels for the pure-inference forwards (the classification of clean
  /// and adversarial batches). Attack generation itself stays fp32: its
  /// forwards feed a backward, and perturbation search must not change with
  /// the precision knob (DESIGN.md §8).
  compute::ComputeConfig compute;
};

struct RobustEvalResult {
  double clean_acc = 0.0;
  double pgd_acc = 0.0;
  double aa_acc = 0.0;
};

/// Clean accuracy only (cheap). `compute` selects the inference kernels
/// (default: fp32 blocked, the historical behaviour).
double evaluate_clean(models::BuiltModel& model, const data::Dataset& test,
                      std::int64_t batch_size = 100, std::int64_t max_samples = -1,
                      const compute::ComputeConfig& compute = {});

/// PGD-k adversarial accuracy.
double evaluate_pgd(models::BuiltModel& model, const data::Dataset& test,
                    const RobustEvalConfig& cfg);

/// Full three-metric evaluation.
RobustEvalResult evaluate_robustness(models::BuiltModel& model,
                                     const data::Dataset& test,
                                     const RobustEvalConfig& cfg);

}  // namespace fp::attack
