#include "attack/attacks.hpp"

#include <algorithm>
#include <cmath>

namespace fp::attack {

void project(Tensor& delta, const PgdConfig& cfg) {
  if (cfg.norm == Norm::kLinf) {
    delta.clamp_(-cfg.epsilon, cfg.epsilon);
    return;
  }
  // Per-sample l2 projection.
  const auto norms = delta.row_l2_norms();
  std::vector<float> factors(norms.size(), 1.0f);
  for (std::size_t i = 0; i < norms.size(); ++i)
    if (norms[i] > cfg.epsilon && norms[i] > 0.0f)
      factors[i] = cfg.epsilon / norms[i];
  delta.scale_rows_(factors);
}

namespace {

void clip_to_valid(Tensor& x_adv, const Tensor& x, const PgdConfig& cfg) {
  if (!cfg.clip) return;
  (void)x;
  x_adv.clamp_(cfg.clip_lo, cfg.clip_hi);
}

/// Ascent direction from a raw gradient: sign for l_inf, per-sample
/// normalized gradient for l2.
Tensor ascent_direction(Tensor grad, const PgdConfig& cfg) {
  if (cfg.norm == Norm::kLinf) {
    grad.sign_();
    return grad;
  }
  const auto norms = grad.row_l2_norms();
  std::vector<float> factors(norms.size());
  for (std::size_t i = 0; i < norms.size(); ++i)
    factors[i] = norms[i] > 1e-12f ? 1.0f / norms[i] : 0.0f;
  grad.scale_rows_(factors);
  return grad;
}

Tensor random_start_delta(const Tensor& x, const PgdConfig& cfg, Rng& rng) {
  if (cfg.norm == Norm::kLinf)
    return Tensor::rand_uniform(x.shape(), rng, -cfg.epsilon, cfg.epsilon);
  Tensor delta = Tensor::randn(x.shape(), rng);
  const auto norms = delta.row_l2_norms();
  std::vector<float> factors(norms.size());
  for (std::size_t i = 0; i < norms.size(); ++i) {
    const float target = cfg.epsilon * rng.uniform(0.0f, 1.0f);
    factors[i] = norms[i] > 1e-12f ? target / norms[i] : 0.0f;
  }
  delta.scale_rows_(factors);
  return delta;
}

}  // namespace

Tensor fgsm(const LossGradFn& fn, const Tensor& x,
            const std::vector<std::int64_t>& y, const PgdConfig& cfg) {
  Tensor grad(x.shape());
  fn(x, y, &grad);
  Tensor x_adv = x;
  x_adv.add_scaled_(ascent_direction(std::move(grad), cfg), cfg.epsilon);
  clip_to_valid(x_adv, x, cfg);
  return x_adv;
}

Tensor pgd(const LossGradFn& fn, const Tensor& x,
           const std::vector<std::int64_t>& y, const PgdConfig& cfg, Rng& rng) {
  Tensor delta = cfg.random_start ? random_start_delta(x, cfg, rng)
                                  : Tensor::zeros(x.shape());
  project(delta, cfg);
  const float alpha = cfg.effective_step();
  for (int step = 0; step < cfg.steps; ++step) {
    Tensor x_adv = x.add(delta);
    clip_to_valid(x_adv, x, cfg);
    Tensor grad(x.shape());
    fn(x_adv, y, &grad);
    delta.add_scaled_(ascent_direction(std::move(grad), cfg), alpha);
    project(delta, cfg);
  }
  Tensor x_adv = x.add(delta);
  clip_to_valid(x_adv, x, cfg);
  return x_adv;
}

Tensor apgd(const LossGradFn& fn, const Tensor& x,
            const std::vector<std::int64_t>& y, const PgdConfig& cfg, Rng& rng) {
  Tensor delta = cfg.random_start ? random_start_delta(x, cfg, rng)
                                  : Tensor::zeros(x.shape());
  project(delta, cfg);
  float alpha = 2.0f * cfg.epsilon;  // APGD starts aggressive, then halves
  Tensor momentum = Tensor::zeros(x.shape());
  Tensor best_delta = delta;
  float best_loss = -std::numeric_limits<float>::infinity();
  float prev_loss = -std::numeric_limits<float>::infinity();
  int stall = 0;
  for (int step = 0; step < cfg.steps; ++step) {
    Tensor x_adv = x.add(delta);
    clip_to_valid(x_adv, x, cfg);
    Tensor grad(x.shape());
    const float loss = fn(x_adv, y, &grad);
    if (loss > best_loss) {
      best_loss = loss;
      best_delta = delta;
    }
    if (loss <= prev_loss) {
      if (++stall >= 2) {  // halve the step and restart from the best point
        alpha *= 0.5f;
        delta = best_delta;
        momentum.zero_();
        stall = 0;
      }
    } else {
      stall = 0;
    }
    prev_loss = loss;
    // Momentum ascent.
    momentum.scale_(0.75f).add_scaled_(ascent_direction(std::move(grad), cfg),
                                       0.25f);
    delta.add_scaled_(momentum, alpha);
    project(delta, cfg);
  }
  Tensor x_adv = x.add(best_delta);
  clip_to_valid(x_adv, x, cfg);
  return x_adv;
}

}  // namespace fp::attack
