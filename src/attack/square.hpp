// Square Attack (Andriushchenko et al. 2020): gradient-free black-box
// l_inf attack by random square-patch search. AutoAttack's ensemble includes
// it precisely because it catches gradient-masked models that PGD/APGD miss;
// adding it to AutoAttackLite strengthens the robustness evaluation.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace fp::attack {

/// Per-sample margin loss used by Square: the attack succeeds on a sample
/// once its margin (logit_y - max logit_other) goes negative. Returns one
/// value per row.
using MarginFn = std::function<std::vector<float>(
    const Tensor& x, const std::vector<std::int64_t>& y)>;

struct SquareConfig {
  float epsilon = 8.0f / 255.0f;
  int iterations = 100;
  /// Initial fraction of the image side covered by a patch; decays with
  /// the iteration schedule as in the original attack.
  double p_init = 0.5;
  float clip_lo = 0.0f, clip_hi = 1.0f;
};

/// Runs the attack on an NCHW batch; returns the adversarial batch. Samples
/// whose margin is already negative are left untouched.
Tensor square_attack(const MarginFn& margin_fn, const Tensor& x,
                     const std::vector<std::int64_t>& y, const SquareConfig& cfg,
                     Rng& rng);

}  // namespace fp::attack
