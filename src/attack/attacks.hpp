// Adversarial attacks: FGSM, PGD-n (l_inf and l2), and AutoAttackLite.
//
// Attacks are expressed against a LossGradFn so the same machinery perturbs
// raw images (epsilon_0-ball around pixels) and intermediate cascade features
// (epsilon_{m-1}-ball around z_{m-1}, paper Fig. 4). The function computes
// the scalar loss and the gradient of that loss w.r.t. the input batch.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace fp::attack {

/// Computes loss(x, y) and, if grad_x != nullptr, d loss / d x into *grad_x.
using LossGradFn = std::function<float(
    const Tensor& x, const std::vector<std::int64_t>& y, Tensor* grad_x)>;

enum class Norm { kLinf, kL2 };

struct PgdConfig {
  float epsilon = 8.0f / 255.0f;
  float step_size = -1.0f;  ///< <0 selects 2.5 * eps / steps (standard heuristic)
  int steps = 10;
  Norm norm = Norm::kLinf;
  bool random_start = true;
  /// Clamp the perturbed input to a valid range (pixel space). Disable for
  /// intermediate-feature perturbations, which are unconstrained.
  bool clip = true;
  float clip_lo = 0.0f, clip_hi = 1.0f;

  float effective_step() const {
    return step_size > 0.0f ? step_size
                            : 2.5f * epsilon / static_cast<float>(steps);
  }
};

/// Single-step fast gradient sign method (l_inf) / normalized gradient (l2).
Tensor fgsm(const LossGradFn& fn, const Tensor& x,
            const std::vector<std::int64_t>& y, const PgdConfig& cfg);

/// Projected gradient descent (Madry et al. 2017): `steps` iterations of
/// gradient ascent on the loss, projected back to the epsilon-ball.
Tensor pgd(const LossGradFn& fn, const Tensor& x,
           const std::vector<std::int64_t>& y, const PgdConfig& cfg, Rng& rng);

/// APGD-style attack used inside AutoAttackLite: gradient ascent with
/// momentum and step-size halving when the objective stops improving.
Tensor apgd(const LossGradFn& fn, const Tensor& x,
            const std::vector<std::int64_t>& y, const PgdConfig& cfg, Rng& rng);

/// Projects `delta` onto the epsilon-ball of the configured norm (in place).
/// For l2, projection is per sample (leading dimension is the batch).
void project(Tensor& delta, const PgdConfig& cfg);

}  // namespace fp::attack
