#include "attack/square.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fp::attack {

namespace {
/// Patch-side schedule from the original paper: the fraction of perturbed
/// pixels decays stepwise with progress through the iteration budget.
double p_at(double p_init, int iter, int total) {
  const double frac = static_cast<double>(iter) / std::max(1, total);
  if (frac <= 0.05) return p_init;
  if (frac <= 0.2) return p_init / 2;
  if (frac <= 0.5) return p_init / 4;
  if (frac <= 0.8) return p_init / 8;
  return p_init / 16;
}
}  // namespace

Tensor square_attack(const MarginFn& margin_fn, const Tensor& x,
                     const std::vector<std::int64_t>& y, const SquareConfig& cfg,
                     Rng& rng) {
  if (x.ndim() != 4) throw std::invalid_argument("square_attack: want NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);

  // Initialize with vertical-stripe perturbation (the attack's warm start).
  Tensor x_adv = x;
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t ch = 0; ch < c; ++ch)
      for (std::int64_t col = 0; col < w; ++col) {
        const float sign = rng.uniform() < 0.5 ? -1.0f : 1.0f;
        for (std::int64_t row = 0; row < h; ++row) {
          float& v = x_adv[((i * c + ch) * h + row) * w + col];
          v = std::clamp(v + sign * cfg.epsilon, cfg.clip_lo, cfg.clip_hi);
        }
      }
  std::vector<float> best = margin_fn(x_adv, y);
  // Keep the clean image where the stripe start did not help.
  {
    const auto clean = margin_fn(x, y);
    for (std::int64_t i = 0; i < n; ++i)
      if (clean[static_cast<std::size_t>(i)] < best[static_cast<std::size_t>(i)]) {
        best[static_cast<std::size_t>(i)] = clean[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < c * h * w; ++j)
          x_adv[i * c * h * w + j] = x[i * c * h * w + j];
      }
  }

  Tensor candidate = x_adv;
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    const double p = p_at(cfg.p_init, iter, cfg.iterations);
    const auto side = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(
               std::sqrt(p * static_cast<double>(h) * static_cast<double>(w)))));
    candidate = x_adv;
    for (std::int64_t i = 0; i < n; ++i) {
      if (best[static_cast<std::size_t>(i)] < 0.0f) continue;  // already broken
      const std::int64_t r0 = static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(h - side + 1)));
      const std::int64_t c0 = static_cast<std::int64_t>(
          rng.uniform_int(static_cast<std::uint64_t>(w - side + 1)));
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float delta = (rng.uniform() < 0.5 ? -1.0f : 1.0f) * cfg.epsilon;
        for (std::int64_t dy = 0; dy < side; ++dy)
          for (std::int64_t dx = 0; dx < side; ++dx) {
            const std::int64_t idx = ((i * c + ch) * h + r0 + dy) * w + c0 + dx;
            // Project onto the eps-ball around the ORIGINAL pixel.
            const float lo = std::max(cfg.clip_lo, x[idx] - cfg.epsilon);
            const float hi = std::min(cfg.clip_hi, x[idx] + cfg.epsilon);
            candidate[idx] = std::clamp(x[idx] + delta, lo, hi);
          }
      }
    }
    const auto margins = margin_fn(candidate, y);
    for (std::int64_t i = 0; i < n; ++i) {
      if (margins[static_cast<std::size_t>(i)] <
          best[static_cast<std::size_t>(i)]) {
        best[static_cast<std::size_t>(i)] = margins[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < c * h * w; ++j)
          x_adv[i * c * h * w + j] = candidate[i * c * h * w + j];
      }
    }
  }
  return x_adv;
}

}  // namespace fp::attack
