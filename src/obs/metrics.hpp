// Metrics registry (DESIGN.md §11): named monotonic counters / gauges and
// the per-phase wall-clock accumulators behind the [obs] summary line.
//
// Counters are always on — an atomic add never changes an experiment's
// output, so there is no off-switch to keep bit-identical (the obs.metrics
// spec key only gates the JSON export). Hot paths hold a `static Counter&`
// so the name lookup happens once per site, not per call.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fp::obs {

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Gauge semantics: record a high-water mark.
  void set_max(std::int64_t x) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (x > cur &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  void set(std::int64_t x) { v_.store(x, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// The counter registered under `name` (created on first use; the reference
/// stays valid for the process lifetime).
Counter& counter(const std::string& name);

/// Every registered counter, name-sorted, plus a fresh "process.rss_peak_kb"
/// sample (getrusage ru_maxrss).
std::vector<std::pair<std::string, std::int64_t>> metrics_snapshot();

/// Zeroes every registered counter (tests / run isolation).
void metrics_reset();

/// Writes {"metrics": {name: value, ...}} (creating parent directories).
bool write_metrics_json(const std::string& path);

// ---- Phase breakdown --------------------------------------------------------
// Non-overlapping top-level phases of a run (sample/train/aggregate/eval are
// disjoint on the engine thread; encode nests inside train and is reported
// separately, accumulated across worker threads). Timers are always on: two
// monotonic clock reads per phase entry, output-neutral by construction.

enum class Phase : int { kSample = 0, kTrain, kEncode, kAggregate, kEval, kCount };

/// RAII phase accumulator. Re-entrant per thread: only the outermost scope
/// of a given phase accumulates, so nested eval-inside-eval never counts
/// twice.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Phase phase_;
  std::int64_t t0_ = 0;
  bool active_;
};

struct PhaseBreakdown {
  double sample_s = 0.0;
  double train_s = 0.0;
  double encode_s = 0.0;  ///< codec work, nested inside train (not additive)
  double aggregate_s = 0.0;
  double eval_s = 0.0;
};

PhaseBreakdown phase_snapshot();
void phase_reset();

}  // namespace fp::obs
