#include "obs/metrics.hpp"

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fp::obs {

namespace {

std::mutex& counters_mu() {
  static std::mutex mu;
  return mu;
}

// Heap-leaked: counter references handed out must stay valid through static
// destruction of any translation unit.
std::map<std::string, std::unique_ptr<Counter>>& counters() {
  static auto* m = new std::map<std::string, std::unique_ptr<Counter>>();
  return *m;
}

std::int64_t rss_peak_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0)
    return static_cast<std::int64_t>(ru.ru_maxrss);
#endif
  return 0;
}

std::atomic<std::int64_t> g_phase_ns[static_cast<int>(Phase::kCount)];
thread_local int tls_phase_depth[static_cast<int>(Phase::kCount)];

}  // namespace

Counter& counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(counters_mu());
  auto& slot = counters()[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::vector<std::pair<std::string, std::int64_t>> metrics_snapshot() {
  std::vector<std::pair<std::string, std::int64_t>> out;
  {
    std::lock_guard<std::mutex> lock(counters_mu());
    out.reserve(counters().size() + 1);
    for (const auto& [name, c] : counters()) out.emplace_back(name, c->value());
  }
  out.emplace_back("process.rss_peak_kb", rss_peak_kb());
  return out;
}

void metrics_reset() {
  std::lock_guard<std::mutex> lock(counters_mu());
  for (auto& [name, c] : counters()) c->set(0);
}

bool write_metrics_json(const std::string& path) {
  const auto snap = metrics_snapshot();
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\"metrics\": {");
  for (std::size_t i = 0; i < snap.size(); ++i)
    std::fprintf(f, "%s\n  \"%s\": %lld", i ? "," : "", snap[i].first.c_str(),
                 static_cast<long long>(snap[i].second));
  std::fprintf(f, "\n}}\n");
  return std::fclose(f) == 0;
}

PhaseTimer::PhaseTimer(Phase p) : phase_(p) {
  const int i = static_cast<int>(p);
  active_ = tls_phase_depth[i]++ == 0;
  if (active_) t0_ = now_ns();
}

PhaseTimer::~PhaseTimer() {
  const int i = static_cast<int>(phase_);
  --tls_phase_depth[i];
  if (active_)
    g_phase_ns[i].fetch_add(now_ns() - t0_, std::memory_order_relaxed);
}

PhaseBreakdown phase_snapshot() {
  auto secs = [](Phase p) {
    return static_cast<double>(
               g_phase_ns[static_cast<int>(p)].load(std::memory_order_relaxed)) /
           1e9;
  };
  PhaseBreakdown b;
  b.sample_s = secs(Phase::kSample);
  b.train_s = secs(Phase::kTrain);
  b.encode_s = secs(Phase::kEncode);
  b.aggregate_s = secs(Phase::kAggregate);
  b.eval_s = secs(Phase::kEval);
  return b;
}

void phase_reset() {
  for (auto& p : g_phase_ns) p.store(0, std::memory_order_relaxed);
}

}  // namespace fp::obs
