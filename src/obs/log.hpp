// Leveled, monotonic-timestamped stderr logging (DESIGN.md §11).
//
// Replaces the scattered std::fprintf(stderr, ...) banners in fp_run and
// src/net/: every line carries seconds since process start on the same
// steady clock the tracer uses, so log lines and trace spans correlate.
// kQuiet suppresses info+debug; errors are not routed here (they throw or
// print unconditionally).
#pragma once

namespace fp::obs {

enum class LogLevel : int { kQuiet = 0, kInfo = 1, kDebug = 2 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "quiet"/"info"/"debug"; returns false (level untouched) otherwise.
bool parse_log_level(const char* s, LogLevel* out);

/// printf-style line to stderr as "[   12.345] info: ...". Dropped when
/// `level` is above the configured threshold.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace fp::obs
