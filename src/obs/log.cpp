#include "obs/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "obs/trace.hpp"

namespace fp::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

std::int64_t start_ns() {
  static const std::int64_t t = now_ns();
  return t;
}

}  // namespace

void set_log_level(LogLevel level) {
  start_ns();  // pin the time base no later than configuration
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool parse_log_level(const char* s, LogLevel* out) {
  if (std::strcmp(s, "quiet") == 0) *out = LogLevel::kQuiet;
  else if (std::strcmp(s, "info") == 0) *out = LogLevel::kInfo;
  else if (std::strcmp(s, "debug") == 0) *out = LogLevel::kDebug;
  else return false;
  return true;
}

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  const double t = static_cast<double>(now_ns() - start_ns()) / 1e9;
  // One fprintf per line so concurrent processes/threads interleave whole
  // lines, not fragments.
  std::fprintf(stderr, "[%9.3f] %s: %s\n", t,
               level == LogLevel::kDebug ? "debug" : "info", msg);
}

}  // namespace fp::obs
