#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "comm/wire.hpp"

namespace fp::obs {

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

namespace {

// Chunked SPSC buffers: the owner thread appends events and publishes them
// with a release store of the chunk count; the flusher walks chunks with
// acquire loads and never writes. A full buffer drops (counted) instead of
// growing unboundedly — 1024 chunks x 256 events = 256k spans per thread,
// far above any sane sampled run.
constexpr std::uint32_t kChunkEvents = 256;
constexpr std::size_t kMaxChunksPerThread = 1024;

struct Event {
  const char* name;
  const char* cat;
  const char* arg_name;  ///< nullptr = no arg
  std::int64_t t0_ns;
  std::int64_t t1_ns;
  std::int64_t arg;
};

struct Chunk {
  Event ev[kChunkEvents];
  std::atomic<std::uint32_t> count{0};
  std::atomic<Chunk*> next{nullptr};
};

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::string name;       ///< guarded by registry_mu()
  Chunk* head = nullptr;  ///< immutable once registered
  // Owner-thread-only append state.
  Chunk* tail = nullptr;
  std::size_t nchunks = 1;
  std::atomic<std::int64_t> dropped{0};
  // Wire-drain watermark (serialize_new_events); guarded by registry_mu().
  Chunk* drain_chunk = nullptr;
  std::uint32_t drain_idx = 0;
};

/// Worker spans merged root-side carry owned strings and an explicit pid.
struct ForeignEvent {
  std::string name, cat, arg_name;
  std::int64_t t0_ns, t1_ns, arg;
  std::uint32_t tid, pid;
};

struct ForeignState {
  std::vector<ForeignEvent> events;
  std::map<std::uint32_t, std::string> process_names;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names;
};

std::atomic<std::int64_t> g_epoch_ns{0};
std::atomic<std::int64_t> g_sample_n{16};

// Registry and foreign store are heap-leaked: thread buffers must outlive
// any thread (including pool teardown during static destruction).
std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<std::unique_ptr<ThreadBuffer>>& registry() {
  static auto* r = new std::vector<std::unique_ptr<ThreadBuffer>>();
  return *r;
}
std::mutex& foreign_mu() {
  static std::mutex mu;
  return mu;
}
ForeignState& foreign() {
  static auto* f = new ForeignState();
  return *f;
}

thread_local ThreadBuffer* tls_buf = nullptr;

ThreadBuffer& this_thread_buffer() {
  if (tls_buf) return *tls_buf;
  auto buf = std::make_unique<ThreadBuffer>();
  buf->head = buf->tail = new Chunk();
  buf->drain_chunk = buf->head;
  std::lock_guard<std::mutex> lock(registry_mu());
  buf->tid = static_cast<std::uint32_t>(registry().size());
  buf->name = "thread-" + std::to_string(buf->tid);
  tls_buf = buf.get();
  registry().push_back(std::move(buf));
  return *tls_buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Reads the publishable events of `buf` in order, calling fn(event). Caller
/// holds registry_mu() (for the name; the event walk itself is lock-free).
template <class Fn>
void walk(const ThreadBuffer& buf, Fn&& fn) {
  for (const Chunk* c = buf.head; c != nullptr;
       c = c->next.load(std::memory_order_acquire)) {
    const std::uint32_t n = c->count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < n; ++i) fn(c->ev[i]);
    if (n < kChunkEvents) break;  // the tail chunk; nothing published past it
  }
}

}  // namespace

namespace detail {

void emit_span(const char* name, const char* cat, const char* arg_name,
               std::int64_t t0_ns, std::int64_t t1_ns, std::int64_t arg) {
  ThreadBuffer& b = this_thread_buffer();
  Chunk* c = b.tail;
  std::uint32_t n = c->count.load(std::memory_order_relaxed);
  if (n == kChunkEvents) {
    if (b.nchunks >= kMaxChunksPerThread) {
      b.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto* fresh = new Chunk();
    c->next.store(fresh, std::memory_order_release);
    b.tail = fresh;
    ++b.nchunks;
    c = fresh;
    n = 0;
  }
  c->ev[n] = Event{name, cat, arg_name, t0_ns, t1_ns, arg};
  c->count.store(n + 1, std::memory_order_release);
}

bool kernel_sampled() {
  thread_local std::int64_t calls = 0;
  const std::int64_t n = g_sample_n.load(std::memory_order_relaxed);
  return calls++ % std::max<std::int64_t>(1, n) == 0;
}

}  // namespace detail

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double now_s() { return static_cast<double>(now_ns()) / 1e9; }

void configure(const ObsSettings& settings) {
  g_sample_n.store(std::max<std::int64_t>(1, settings.sample_kernels),
                   std::memory_order_relaxed);
  if (!settings.trace) {
    detail::g_trace_on.store(false, std::memory_order_release);
    return;
  }
  // Fresh epoch: stale spans from earlier runs in this process (benches,
  // test suites) fall before it and are never flushed again.
  g_epoch_ns.store(now_ns(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(foreign_mu());
    foreign().events.clear();
    foreign().process_names.clear();
    foreign().thread_names.clear();
  }
  detail::g_trace_on.store(true, std::memory_order_release);
}

void set_thread_name(const char* name) {
#if defined(__linux__)
  char short_name[16];
  std::snprintf(short_name, sizeof(short_name), "%s", name);
  pthread_setname_np(pthread_self(), short_name);
#endif
  ThreadBuffer& b = this_thread_buffer();
  std::lock_guard<std::mutex> lock(registry_mu());
  b.name = name;
}

std::vector<TraceEvent> trace_snapshot() {
  const std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(registry_mu());
    for (const auto& buf : registry()) {
      walk(*buf, [&](const Event& e) {
        if (e.t0_ns < epoch) return;
        TraceEvent ev;
        ev.name = e.name;
        ev.cat = e.cat;
        if (e.arg_name) ev.arg_name = e.arg_name;
        ev.thread_name = buf->name;
        ev.t0_ns = e.t0_ns;
        ev.t1_ns = e.t1_ns;
        ev.arg = e.arg;
        ev.tid = buf->tid;
        ev.pid = 0;
        out.push_back(std::move(ev));
      });
    }
  }
  std::lock_guard<std::mutex> lock(foreign_mu());
  for (const ForeignEvent& e : foreign().events) {
    TraceEvent ev;
    ev.name = e.name;
    ev.cat = e.cat;
    ev.arg_name = e.arg_name;
    const auto it = foreign().thread_names.find({e.pid, e.tid});
    ev.thread_name = it != foreign().thread_names.end()
                         ? it->second
                         : "thread-" + std::to_string(e.tid);
    ev.t0_ns = e.t0_ns;
    ev.t1_ns = e.t1_ns;
    ev.arg = e.arg;
    ev.tid = e.tid;
    ev.pid = e.pid;
    out.push_back(std::move(ev));
  }
  return out;
}

std::int64_t dropped_events() {
  std::int64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mu());
  for (const auto& buf : registry())
    total += buf->dropped.load(std::memory_order_relaxed);
  return total;
}

bool write_trace_json(const std::string& path) {
  const std::vector<TraceEvent> events = trace_snapshot();
  const std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);

  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;

  std::map<std::uint32_t, std::string> process_names;
  process_names[0] = "root";
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> thread_names;
  for (const TraceEvent& e : events)
    thread_names[{e.pid, e.tid}] = e.thread_name;
  {
    std::lock_guard<std::mutex> lock(foreign_mu());
    for (const auto& [pid, name] : foreign().process_names)
      process_names[pid] = name;
  }

  std::fprintf(f, "{\"traceEvents\": [");
  bool first = true;
  auto sep = [&] {
    std::fprintf(f, "%s\n  ", first ? "" : ",");
    first = false;
  };
  for (const auto& [pid, name] : process_names) {
    sep();
    std::fprintf(f,
                 "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %u, "
                 "\"tid\": 0, \"args\": {\"name\": \"%s\"}}",
                 pid, json_escape(name).c_str());
  }
  for (const auto& [key, name] : thread_names) {
    sep();
    std::fprintf(f,
                 "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %u, "
                 "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                 key.first, key.second, json_escape(name).c_str());
  }
  for (const TraceEvent& e : events) {
    // Microseconds relative to the trace epoch; merged worker events can
    // land fractionally before it (clock alignment slack), clamp to 0.
    const double ts =
        std::max(0.0, static_cast<double>(e.t0_ns - epoch) / 1e3);
    const double dur =
        std::max(0.0, static_cast<double>(e.t1_ns - e.t0_ns) / 1e3);
    sep();
    std::fprintf(f,
                 "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", "
                 "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, \"tid\": %u",
                 json_escape(e.name).c_str(), json_escape(e.cat).c_str(), ts,
                 dur, e.pid, e.tid);
    if (!e.arg_name.empty())
      std::fprintf(f, ", \"args\": {\"%s\": %lld}",
                   json_escape(e.arg_name).c_str(),
                   static_cast<long long>(e.arg));
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n], \"displayTimeUnit\": \"ms\"}\n");
  return std::fclose(f) == 0;
}

void serialize_new_events(comm::FrameWriter& out) {
  const std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(registry_mu());

  out.u64(static_cast<std::uint64_t>(now_ns()));
  out.u32(static_cast<std::uint32_t>(registry().size()));
  for (const auto& buf : registry()) {
    out.u32(buf->tid);
    out.str(buf->name);
  }

  // Collect from each buffer's watermark, then advance it: every event ships
  // exactly once even though a worker serves many groups.
  std::vector<std::pair<Event, std::uint32_t>> fresh;  // (event, tid)
  for (const auto& buf : registry()) {
    Chunk* c = buf->drain_chunk;
    std::uint32_t i = buf->drain_idx;
    for (;;) {
      const std::uint32_t n = c->count.load(std::memory_order_acquire);
      for (; i < n; ++i)
        if (c->ev[i].t0_ns >= epoch) fresh.emplace_back(c->ev[i], buf->tid);
      if (n < kChunkEvents) break;
      Chunk* next = c->next.load(std::memory_order_acquire);
      if (!next) break;
      c = next;
      i = 0;
    }
    buf->drain_chunk = c;
    buf->drain_idx = i;
  }

  out.u32(static_cast<std::uint32_t>(fresh.size()));
  for (const auto& [e, tid] : fresh) {
    out.str(e.name);
    out.str(e.cat);
    out.str(e.arg_name ? e.arg_name : "");
    out.i64(e.t0_ns);
    out.i64(e.t1_ns);
    out.i64(e.arg);
    out.u32(tid);
  }
}

void ingest_remote_events(comm::FrameReader& in, std::uint32_t pid,
                          const std::string& process_name) {
  const auto worker_now = static_cast<std::int64_t>(in.u64());
  const std::int64_t delta = now_ns() - worker_now;
  std::lock_guard<std::mutex> lock(foreign_mu());
  foreign().process_names[pid] = process_name;
  const std::uint32_t nthreads = in.u32();
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    const std::uint32_t tid = in.u32();
    foreign().thread_names[{pid, tid}] = in.str();
  }
  const std::uint32_t nevents = in.u32();
  foreign().events.reserve(foreign().events.size() + nevents);
  for (std::uint32_t i = 0; i < nevents; ++i) {
    ForeignEvent e;
    e.name = in.str();
    e.cat = in.str();
    e.arg_name = in.str();
    e.t0_ns = in.i64() + delta;
    e.t1_ns = in.i64() + delta;
    e.arg = in.i64();
    e.tid = in.u32();
    e.pid = pid;
    foreign().events.push_back(std::move(e));
  }
}

}  // namespace fp::obs
