// Span tracer (DESIGN.md §11): RAII scopes writing lock-free per-thread
// event buffers, flushed to Chrome trace-event JSON (chrome://tracing /
// Perfetto).
//
// Contract with the hot paths: when tracing is off (the default) a span is a
// single relaxed atomic load and nothing else — no clock read, no buffer
// touch, no allocation — so tracing-off runs stay bit-identical AND
// perf-neutral. When on, each span costs two monotonic clock reads and one
// slot write into this thread's chunked buffer; the flusher never blocks a
// writer (SPSC publication via release/acquire on per-chunk counts).
//
// Span names, categories, and arg names MUST be string literals (the buffer
// stores the pointers). Events from other processes (the distributed trace
// merge, kMsgTrace) carry owned strings and live in a separate foreign store.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fp::comm {
class FrameWriter;
class FrameReader;
}  // namespace fp::comm

namespace fp::obs {

namespace detail {
extern std::atomic<bool> g_trace_on;
void emit_span(const char* name, const char* cat, const char* arg_name,
               std::int64_t t0_ns, std::int64_t t1_ns, std::int64_t arg);
bool kernel_sampled();  ///< true for 1-in-N calls on this thread (tracing on)
}  // namespace detail

/// Monotonic (steady) clock, nanoseconds. The time base of every span.
std::int64_t now_ns();
/// now_ns() in seconds — wall-clock measurement helper.
double now_s();

/// The obs.* spec surface, applied at run start (exp::run_built and
/// net::run_worker call this from the resolved spec).
struct ObsSettings {
  bool trace = false;            ///< collect spans
  std::string trace_path;        ///< "" = derive from FP_BENCH_OUT / run name
  bool metrics = false;          ///< export the counter registry as JSON
  std::int64_t sample_kernels = 16;  ///< trace 1 in N kernel entry calls
};

/// Enables/disables span collection. Enabling records the trace epoch: only
/// events that begin at or after it are flushed, so buffers are reusable
/// across runs in one process without replaying stale spans.
void configure(const ObsSettings& settings);

inline bool tracing_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Names the calling thread: the trace lane label, and (on Linux) the
/// pthread name TSan reports and `top -H` show. Safe to call with tracing
/// off; truncated to 15 chars for the kernel.
void set_thread_name(const char* name);

/// RAII span. Use the FP_TRACE_SCOPE* macros; name/cat/arg_name must be
/// string literals.
class SpanScope {
 public:
  explicit SpanScope(const char* name, const char* cat,
                     const char* arg_name = nullptr, std::int64_t arg = 0)
      : name_(name), cat_(cat), arg_name_(arg_name), arg_(arg),
        active_(tracing_enabled()) {
    if (active_) t0_ = now_ns();
  }
  ~SpanScope() {
    if (active_) detail::emit_span(name_, cat_, arg_name_, t0_, now_ns(), arg_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  const char* cat_;
  const char* arg_name_;
  std::int64_t arg_;
  std::int64_t t0_ = 0;
  bool active_;
};

/// Sampled span for kernel entry points (category "kernel"): traces 1 in
/// obs.sample_kernels calls per thread, so a GEMM-heavy run yields a
/// readable lane instead of millions of events.
class KernelScope {
 public:
  explicit KernelScope(const char* name, const char* arg_name = nullptr,
                       std::int64_t arg = 0)
      : name_(name), arg_name_(arg_name), arg_(arg),
        active_(tracing_enabled() && detail::kernel_sampled()) {
    if (active_) t0_ = now_ns();
  }
  ~KernelScope() {
    if (active_)
      detail::emit_span(name_, "kernel", arg_name_, t0_, now_ns(), arg_);
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  const char* name_;
  const char* arg_name_;
  std::int64_t arg_;
  std::int64_t t0_ = 0;
  bool active_;
};

#define FP_OBS_CAT2(a, b) a##b
#define FP_OBS_CAT(a, b) FP_OBS_CAT2(a, b)
#define FP_TRACE_SCOPE(name, cat) \
  ::fp::obs::SpanScope FP_OBS_CAT(fp_trace_scope_, __LINE__)((name), (cat))
#define FP_TRACE_SCOPE_ARG(name, cat, arg_name, arg_value)      \
  ::fp::obs::SpanScope FP_OBS_CAT(fp_trace_scope_, __LINE__)(   \
      (name), (cat), (arg_name), static_cast<std::int64_t>(arg_value))
#define FP_TRACE_KERNEL(name, arg_name, arg_value)              \
  ::fp::obs::KernelScope FP_OBS_CAT(fp_trace_kernel_, __LINE__)( \
      (name), (arg_name), static_cast<std::int64_t>(arg_value))

/// One flushed event — what tests inspect and the JSON writer renders.
struct TraceEvent {
  std::string name, cat, arg_name, thread_name;
  std::int64_t t0_ns = 0, t1_ns = 0, arg = 0;
  std::uint32_t tid = 0;
  std::uint32_t pid = 0;  ///< 0 = this process; >0 = merged worker lane
};

/// Every event since the trace epoch (local + ingested foreign), unordered.
std::vector<TraceEvent> trace_snapshot();

/// Events discarded because a thread hit its buffer cap (reported, never
/// blocking).
std::int64_t dropped_events();

/// Writes the Chrome trace-event JSON (creating parent directories). False
/// on I/O failure.
bool write_trace_json(const std::string& path);

// ---- Distributed merge (net kMsgTrace, DESIGN.md §11) -----------------------

/// Worker side: serializes every local event not yet drained (plus the
/// thread-name table and the worker's current now_ns() for clock alignment)
/// and advances the drain watermark. Called once per served group.
void serialize_new_events(comm::FrameWriter& out);

/// Root side: ingests one serialize_new_events frame as process lane `pid`
/// (worker rank + 1), shifting worker timestamps onto the root clock via
/// delta = root now_ns() - shipped worker now_ns().
void ingest_remote_events(comm::FrameReader& in, std::uint32_t pid,
                          const std::string& process_name);

}  // namespace fp::obs
