#include "serve/server.hpp"

#include <csignal>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/wire_json.hpp"

namespace fp::serve {

namespace {

/// Poll interval for accept/read loops: the latency bound on observing the
/// stop flag from an otherwise-idle thread.
constexpr double kPollS = 0.25;

std::string quantiles_ms_json(const LatencyHist& h) {
  std::string out = "{\"p50\":";
  out += format_double(h.quantile(0.50) * 1e3);
  out += ",\"p95\":";
  out += format_double(h.quantile(0.95) * 1e3);
  out += ",\"p99\":";
  out += format_double(h.quantile(0.99) * 1e3);
  out += ",\"mean\":";
  const std::int64_t n = h.count();
  out += format_double(n > 0 ? h.total_s() * 1e3 / static_cast<double>(n) : 0.0);
  out += "}";
  return out;
}

}  // namespace

ServeConfig serve_config_of(const exp::ExperimentSpec& spec) {
  ServeConfig cfg;
  cfg.host = spec.serve_host;
  cfg.port = static_cast<int>(spec.serve_port);
  cfg.max_batch = spec.serve_max_batch;
  cfg.max_delay_ms = spec.serve_max_delay_ms;
  cfg.queue_cap = spec.serve_queue_cap;
  cfg.max_conns = spec.serve_max_conns;
  return cfg;
}

InferenceServer::InferenceServer(ServedModel model, ServeConfig cfg)
    : model_(std::move(model)),
      cfg_(cfg),
      batcher_(BatchConfig{cfg.max_batch, cfg.max_delay_ms, cfg.queue_cap},
               [this](const Tensor& x) {
                 return reference_forward(*model_.model, x, model_.compute);
               }) {}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::start() {
  if (started_) return;
  listener_ = std::make_unique<net::TcpListener>(cfg_.host, cfg_.port);
  batcher_.start();
  stop_.store(false, std::memory_order_relaxed);
  acceptor_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void InferenceServer::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  acceptor_.join();
  listener_.reset();
  {
    std::lock_guard<std::mutex> lk(handlers_mu_);
    for (std::thread& t : handlers_) t.join();
    handlers_.clear();
  }
  // Last: in-flight predicts have all fanned back by now, so this only
  // drains an empty queue and joins the batcher thread.
  batcher_.stop();
  started_ = false;
}

int InferenceServer::port() const {
  return listener_ ? listener_->port() : cfg_.port;
}

void InferenceServer::accept_loop() {
  obs::set_thread_name("serve-accept");
  while (!stop_.load(std::memory_order_relaxed)) {
    net::TcpConn conn;
    try {
      conn = listener_->accept(kPollS);
    } catch (const net::NetError&) {
      continue;  // timeout (or transient accept failure): re-check stop flag
    }
    obs::counter("serve.conns").add(1);
    std::lock_guard<std::mutex> lk(handlers_mu_);
    handlers_.emplace_back(
        [this, c = std::move(conn)]() mutable { handle_conn(std::move(c)); });
  }
}

void InferenceServer::handle_conn(net::TcpConn conn) {
  obs::set_thread_name("serve-conn");
  if (active_conns_.fetch_add(1, std::memory_order_relaxed) >= cfg_.max_conns) {
    // Over capacity: refuse before reading anything.
    try {
      net::HttpConn http(std::move(conn));
      http.write_response(503, "text/plain", "too many connections\n",
                          /*keep_alive=*/false);
    } catch (const net::NetError&) {
    }
    active_conns_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  try {
    net::HttpConn http(std::move(conn));
    net::HttpRequest req;
    while (!stop_.load(std::memory_order_relaxed)) {
      const net::HttpConn::Read r = http.read_request(&req, kPollS);
      if (r == net::HttpConn::Read::kTimeout) continue;
      if (r == net::HttpConn::Read::kClosed) break;
      const Reply reply = route(req);
      const bool keep =
          req.keep_alive() && !stop_.load(std::memory_order_relaxed);
      http.write_response(reply.status, reply.content_type, reply.body, keep,
                          reply.extra_headers);
      if (!keep) break;
    }
  } catch (const net::HttpError&) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    // Framing violation: the 400 is best-effort, the close is the point.
  } catch (const net::NetError&) {
    // Peer reset mid-message; nothing to answer.
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

InferenceServer::Reply InferenceServer::route(const net::HttpRequest& req) {
  FP_TRACE_SCOPE("serve.request", "serve");
  if (req.method == "POST" && req.target == "/v1/predict") return predict(req);
  if (req.method == "GET" && req.target == "/healthz")
    return Reply{200, "text/plain", "ok\n", {}};
  if (req.method == "GET" && req.target == "/metricsz")
    return Reply{200, "application/json", metrics_json(), {}};
  if (req.target == "/healthz" || req.target == "/metricsz" ||
      req.target == "/v1/predict")
    return Reply{405, "text/plain", "method not allowed\n", {}};
  return Reply{404, "text/plain", "not found\n", {}};
}

InferenceServer::Reply InferenceServer::predict(const net::HttpRequest& req) {
  const double t0 = obs::now_s();
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("serve.requests").add(1);
  Tensor x;
  try {
    x = parse_predict_request(req.body, model_.channels(), model_.height(),
                              model_.width());
  } catch (const BadRequest& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("serve.errors").add(1);
    return Reply{400, "text/plain", std::string(e.what()) + "\n", {}};
  }
  Tensor logits;
  std::int64_t batch = 0;
  const MicroBatcher::Status st = batcher_.predict(x, &logits, &batch);
  if (st == MicroBatcher::Status::kOverloaded) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Reply{503, "text/plain", "overloaded: queue full\n", {}};
  }
  if (st == MicroBatcher::Status::kFailed) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Reply{500, "text/plain", "inference failed\n", {}};
  }
  Reply reply{200, "application/json", render_predict_response(logits), {}};
  reply.extra_headers.emplace_back("X-FP-Batch", std::to_string(batch));
  latency_.record(obs::now_s() - t0);
  return reply;
}

std::string InferenceServer::metrics_json() const {
  const BatchStats& bs = batcher_.batch_stats();
  std::string out = "{\"serve\":{\"requests\":";
  out += std::to_string(requests_.load(std::memory_order_relaxed));
  out += ",\"predicted_samples\":";
  out += std::to_string(bs.samples());
  out += ",\"batches\":";
  out += std::to_string(bs.batches());
  out += ",\"errors\":";
  out += std::to_string(errors_.load(std::memory_order_relaxed));
  out += ",\"rejected\":";
  out += std::to_string(batcher_.rejected());
  out += ",\"active_conns\":";
  out += std::to_string(active_conns_.load(std::memory_order_relaxed));
  out += ",\"latency_ms\":";
  out += quantiles_ms_json(latency_);
  out += ",\"batch_size\":{\"mean\":";
  out += format_double(bs.mean());
  out += ",\"max\":";
  out += std::to_string(bs.max());
  out += "}}}";
  return out;
}

namespace {
volatile std::sig_atomic_t g_stop_signal = 0;
void on_stop_signal(int) { g_stop_signal = 1; }
}  // namespace

int serve_until_signal(InferenceServer& server) {
  g_stop_signal = 0;
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  server.start();
  const auto& m = server.model();
  std::printf("fp_serve: %s (%lldx%lldx%lld -> %lld classes, %s%s)\n",
              m.spec.model.c_str(), static_cast<long long>(m.channels()),
              static_cast<long long>(m.height()),
              static_cast<long long>(m.width()),
              static_cast<long long>(m.classes()),
              m.compute.precision == compute::Precision::kInt8 ? "int8"
                                                               : "fp32",
              m.compute.winograd ? "+winograd" : "");
  // The poll line scripts wait for; flushed before the first accept returns.
  std::printf("listening on %s:%d\n", server.host().c_str(), server.port());
  std::fflush(stdout);
  struct timespec tick = {0, 100 * 1000 * 1000};  // 100ms
  while (g_stop_signal == 0) nanosleep(&tick, nullptr);
  server.stop();
  server.print_summary(std::cout);
  return 0;
}

void InferenceServer::print_summary(std::ostream& os) const {
  const BatchStats& bs = batcher_.batch_stats();
  char line[256];
  std::snprintf(line, sizeof(line),
                "[serve] requests=%lld samples=%lld batches=%lld "
                "mean_batch=%.2f p50=%.3fms p95=%.3fms p99=%.3fms "
                "errors=%lld rejected=%lld",
                static_cast<long long>(requests()),
                static_cast<long long>(bs.samples()),
                static_cast<long long>(bs.batches()), bs.mean(),
                latency_.quantile(0.50) * 1e3, latency_.quantile(0.95) * 1e3,
                latency_.quantile(0.99) * 1e3,
                static_cast<long long>(errors_.load(std::memory_order_relaxed)),
                static_cast<long long>(batcher_.rejected()));
  os << line << "\n";
}

}  // namespace fp::serve
