#include "serve/model_host.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/registries.hpp"
#include "exp/runner.hpp"
#include "nn/model_io.hpp"

namespace fp::serve {

std::string sidecar_path(const std::string& model_path) {
  return model_path + ".spec.json";
}

void export_model(const std::string& path, const exp::ExperimentSpec& resolved,
                  const nn::ParamBlob& blob) {
  nn::save_checkpoint(path, blob);
  const std::string spec_path = sidecar_path(path);
  std::ofstream out(spec_path);
  out << exp::spec_to_json(resolved);
  out.flush();
  if (!out)
    throw std::runtime_error("export_model: cannot write sidecar " + spec_path);
}

ServedModel make_served_model(exp::ExperimentSpec resolved,
                              const nn::ParamBlob& blob) {
  ServedModel m;
  // resolve_full is idempotent on an exported sidecar and fills the autos
  // when a hand-written spec is served directly.
  m.spec = exp::resolve_full(std::move(resolved));
  const exp::ModelParams mp{m.spec.model_image, m.spec.model_classes,
                            m.spec.model_width};
  m.model_spec = exp::model_registry().resolve(m.spec.model)(mp);
  m.compute = m.spec.fl.compute;
  // Weights and BN statistics are fully overwritten by the blob; the Rng
  // only feeds the throwaway initialization.
  Rng rng(m.spec.fl.seed);
  m.model = std::make_unique<models::BuiltModel>(m.model_spec, rng);
  const std::int64_t want = static_cast<std::int64_t>(m.model->save_all().size());
  if (static_cast<std::int64_t>(blob.size()) != want)
    throw std::runtime_error(
        "checkpoint does not fit model '" + m.spec.model + "': holds " +
        std::to_string(blob.size()) + " floats, model expects " +
        std::to_string(want) +
        " (was the sidecar spec edited after --save-model?)");
  m.model->load_all(blob);
  return m;
}

ServedModel load_served_model(const std::string& ckpt_path,
                              const std::string& spec_path) {
  const std::string sp = spec_path.empty() ? sidecar_path(ckpt_path) : spec_path;
  std::ifstream in(sp);
  if (!in)
    throw std::runtime_error("cannot read model spec sidecar " + sp +
                             " (exported next to the checkpoint by "
                             "fp_run --save-model)");
  std::ostringstream text;
  text << in.rdbuf();
  exp::ExperimentSpec spec;
  exp::apply_json(spec, text.str());
  return make_served_model(std::move(spec), nn::load_checkpoint(ckpt_path));
}

Tensor reference_forward(models::BuiltModel& model, const Tensor& x,
                         const compute::ComputeConfig& cc) {
  const compute::InferenceScope scope(cc);
  return model.forward(x, /*train=*/false);
}

}  // namespace fp::serve
