#include "serve/wire_json.hpp"

#include <cstdlib>
#include <vector>

#include "exp/json.hpp"
#include "exp/registry.hpp"
#include "serve/stats.hpp"

namespace fp::serve {

namespace {

float parse_float_strict(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const float v = std::strtof(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0')
    throw BadRequest("non-numeric value '" + value + "' at " + key);
  return v;
}

/// Parses the sample index of an "inputs.<i>.<j>" key; -1 when malformed.
std::int64_t sample_index(const std::string& key, std::size_t prefix_len) {
  std::int64_t idx = 0;
  std::size_t i = prefix_len;
  if (i >= key.size() || key[i] < '0' || key[i] > '9') return -1;
  for (; i < key.size() && key[i] >= '0' && key[i] <= '9'; ++i)
    idx = idx * 10 + (key[i] - '0');
  return idx;
}

// ---- fast-path body scanner -------------------------------------------------
// The relaxed parser materializes one "inputs.<i>.<j>" key string per element,
// which dominates request latency for kilobyte bodies. This scanner reads the
// numeric arrays in place with the same strtof conversion (so values are
// bitwise identical) and bails out — returning false — on anything beyond a
// flat {"input":[...]} / {"inputs":[[...],...]} object, in which case the
// caller falls back to the relaxed parser and its error messages.

void skip_ws(const char* s, std::size_t n, std::size_t* i) {
  while (*i < n && (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\n' ||
                    s[*i] == '\r'))
    ++*i;
}

/// Skips a balanced JSON value (scalar, string, array, or object). Returns
/// false when the value is malformed enough that the slow path should decide.
bool skip_value(const char* s, std::size_t n, std::size_t* i) {
  skip_ws(s, n, i);
  if (*i >= n) return false;
  if (s[*i] == '"') {
    for (++*i; *i < n; ++*i) {
      if (s[*i] == '\\') ++*i;
      else if (s[*i] == '"') { ++*i; return true; }
    }
    return false;
  }
  if (s[*i] == '[' || s[*i] == '{') {
    int depth = 0;
    bool in_str = false;
    for (; *i < n; ++*i) {
      const char c = s[*i];
      if (in_str) {
        if (c == '\\') ++*i;
        else if (c == '"') in_str = false;
      } else if (c == '"') {
        in_str = true;
      } else if (c == '[' || c == '{') {
        ++depth;
      } else if (c == ']' || c == '}') {
        if (--depth == 0) { ++*i; return true; }
      }
    }
    return false;
  }
  // Scalar: run to the next structural character.
  while (*i < n && s[*i] != ',' && s[*i] != '}' && s[*i] != ']') ++*i;
  return true;
}

/// Reads a `[num, num, ...]` array at *i into out. False → fall back.
bool scan_float_array(const char* s, std::size_t n, std::size_t* i,
                      std::vector<float>* out) {
  skip_ws(s, n, i);
  if (*i >= n || s[*i] != '[') return false;
  ++*i;
  skip_ws(s, n, i);
  if (*i < n && s[*i] == ']') { ++*i; return true; }
  while (*i < n) {
    char* end = nullptr;
    const float v = std::strtof(s + *i, &end);
    if (end == s + *i) return false;  // not a number: string/bool/nested
    out->push_back(v);
    *i = static_cast<std::size_t>(end - s);
    skip_ws(s, n, i);
    if (*i >= n) return false;
    if (s[*i] == ',') { ++*i; skip_ws(s, n, i); continue; }
    if (s[*i] == ']') { ++*i; return true; }
    return false;
  }
  return false;
}

bool scan_samples_fast(const std::string& body,
                       std::vector<std::vector<float>>* samples) {
  const char* s = body.data();
  const std::size_t n = body.size();
  std::size_t i = 0;
  bool saw_input = false, saw_inputs = false;
  skip_ws(s, n, &i);
  if (i >= n || s[i] != '{') return false;
  ++i;
  skip_ws(s, n, &i);
  if (i < n && s[i] == '}') return true;  // empty object → "no samples"
  while (i < n) {
    skip_ws(s, n, &i);
    if (i >= n || s[i] != '"') return false;  // unquoted keys → slow path
    const std::size_t key_start = ++i;
    while (i < n && s[i] != '"' && s[i] != '\\') ++i;
    if (i >= n || s[i] != '"') return false;
    const std::string_view key(s + key_start, i - key_start);
    ++i;
    skip_ws(s, n, &i);
    if (i >= n || s[i] != ':') return false;
    ++i;
    if (key == "input") {
      if (saw_input || saw_inputs) return false;  // merge semantics → slow
      saw_input = true;
      samples->resize(1);
      if (!scan_float_array(s, n, &i, &(*samples)[0])) return false;
      // "input": [] produces no keys under the relaxed parser → "no samples".
      if ((*samples)[0].empty()) samples->clear();
    } else if (key == "inputs") {
      if (saw_input || saw_inputs) return false;
      saw_inputs = true;
      skip_ws(s, n, &i);
      if (i >= n || s[i] != '[') return false;
      ++i;
      skip_ws(s, n, &i);
      if (i < n && s[i] == ']') {
        ++i;
      } else {
        while (i < n) {
          samples->emplace_back();
          if (!scan_float_array(s, n, &i, &samples->back())) return false;
          skip_ws(s, n, &i);
          if (i >= n) return false;
          if (s[i] == ',') { ++i; continue; }
          if (s[i] == ']') { ++i; break; }
          return false;
        }
      }
      // The relaxed parser only materializes a sample when an element exists,
      // so trailing empty arrays never count — mirror that.
      while (!samples->empty() && samples->back().empty()) samples->pop_back();
    } else {
      if (!skip_value(s, n, &i)) return false;  // unknown fields are ignored
    }
    skip_ws(s, n, &i);
    if (i >= n) return false;
    if (s[i] == ',') { ++i; continue; }
    if (s[i] == '}') return true;
    return false;
  }
  return false;
}

/// Slow path: rebuilds the per-sample vectors from the relaxed parser's
/// flattened "inputs.<i>.<j>" keys. Defined below parse_predict_request.
void parse_relaxed_samples(const exp::FlatJson& flat,
                           std::vector<std::vector<float>>* samples_out);

}  // namespace

Tensor parse_predict_request(const std::string& body, std::int64_t c,
                             std::int64_t h, std::int64_t w) {
  std::vector<std::vector<float>> samples;
  if (!scan_samples_fast(body, &samples)) {
    samples.clear();
    exp::FlatJson flat;
    try {
      flat = exp::parse_json_relaxed(body);
    } catch (const exp::SpecError& e) {
      throw BadRequest(std::string("malformed JSON body: ") + e.what());
    }
    // Values arrive in document order, so appending per sample preserves the
    // NCHW element order of each flat pixel vector.
    parse_relaxed_samples(flat, &samples);
  }
  if (samples.empty())
    throw BadRequest(
        "no samples: body needs \"input\": [...] or \"inputs\": [[...], ...]");
  const std::int64_t want = c * h * w;
  Tensor x({static_cast<std::int64_t>(samples.size()), c, h, w});
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (static_cast<std::int64_t>(samples[i].size()) != want)
      throw BadRequest("sample " + std::to_string(i) + " has " +
                       std::to_string(samples[i].size()) +
                       " values, expected " + std::to_string(want) + " (" +
                       std::to_string(c) + "x" + std::to_string(h) + "x" +
                       std::to_string(w) + ")");
    std::copy(samples[i].begin(), samples[i].end(),
              x.data() + static_cast<std::int64_t>(i) * want);
  }
  return x;
}

namespace {

void parse_relaxed_samples(const exp::FlatJson& flat,
                           std::vector<std::vector<float>>* samples_out) {
  auto& samples = *samples_out;
  for (const auto& [key, value] : flat) {
    std::int64_t idx = -1;
    if (key.rfind("inputs.", 0) == 0) {
      idx = sample_index(key, 7);
      if (idx < 0)
        throw BadRequest("expected \"inputs\" to be an array of arrays");
    } else if (key.rfind("input.", 0) == 0) {
      idx = 0;
    } else {
      continue;  // unknown top-level fields are ignored
    }
    if (static_cast<std::size_t>(idx) >= samples.size())
      samples.resize(static_cast<std::size_t>(idx) + 1);
    samples[static_cast<std::size_t>(idx)].push_back(
        parse_float_strict(key, value));
  }
}

}  // namespace

std::string render_predict_response(const Tensor& logits) {
  const std::int64_t n = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  const auto labels = logits.argmax_rows();
  std::string out;
  out.reserve(static_cast<std::size_t>(n * classes) * 12 + 64);
  out += "{\"predictions\":[";
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ',';
    out += "{\"label\":";
    out += std::to_string(labels[static_cast<std::size_t>(i)]);
    out += ",\"logits\":[";
    for (std::int64_t k = 0; k < classes; ++k) {
      if (k > 0) out += ',';
      out += format_float(logits[i * classes + k]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string render_predict_request(const Tensor& x) {
  const std::int64_t n = x.dim(0);
  const std::int64_t per = x.numel() / n;
  std::string out;
  out.reserve(static_cast<std::size_t>(x.numel()) * 10 + 32);
  out += "{\"inputs\":[";
  for (std::int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ',';
    out += '[';
    for (std::int64_t j = 0; j < per; ++j) {
      if (j > 0) out += ',';
      out += format_float(x[i * per + j]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

}  // namespace fp::serve
