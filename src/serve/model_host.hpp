// Trained-model hosting for the serving plane (DESIGN.md §12).
//
// A served model is a checkpoint (nn/model_io blob) plus its fully-resolved
// `.spec.json` sidecar: the sidecar rebuilds the EXACT registry model the
// training run used (model key, image/width/classes, compute mode), and the
// checkpoint restores its weights and BatchNorm statistics bit-exactly. The
// pair is what `fp_run --save-model` exports and what `fp_serve` loads, so a
// served forward is the same computation as the offline eval forward.
#pragma once

#include <memory>
#include <string>

#include "exp/spec.hpp"
#include "models/built_model.hpp"
#include "nn/serialize.hpp"
#include "tensor/compute_mode.hpp"

namespace fp::serve {

struct ServedModel {
  exp::ExperimentSpec spec;              ///< the resolved sidecar spec
  sys::ModelSpec model_spec;
  std::unique_ptr<models::BuiltModel> model;
  compute::ComputeConfig compute;        ///< spec's compute.precision/winograd

  std::int64_t channels() const { return model_spec.input.c; }
  std::int64_t height() const { return model_spec.input.h; }
  std::int64_t width() const { return model_spec.input.w; }
  std::int64_t classes() const { return model_spec.num_classes; }
};

/// The sidecar path convention: `<model_path>.spec.json`.
std::string sidecar_path(const std::string& model_path);

/// Exports a trained global model: checkpoint at `path` plus the resolved
/// spec sidecar at sidecar_path(path). Throws std::runtime_error on I/O
/// failure — a half-written export must not pass silently.
void export_model(const std::string& path, const exp::ExperimentSpec& resolved,
                  const nn::ParamBlob& blob);

/// Rebuilds the registry model described by `resolved` and loads `blob` into
/// it. Throws with expected-vs-found element counts on a mismatched blob.
ServedModel make_served_model(exp::ExperimentSpec resolved,
                              const nn::ParamBlob& blob);

/// Loads checkpoint + sidecar from disk. `spec_path` empty = the sidecar
/// convention next to the checkpoint.
ServedModel load_served_model(const std::string& ckpt_path,
                              const std::string& spec_path = "");

/// The offline reference forward — exactly what the evaluation harness runs
/// per batch: an InferenceScope around an eval-mode whole-model forward.
/// Served predictions must be bit-identical to this for any batch split.
Tensor reference_forward(models::BuiltModel& model, const Tensor& x,
                         const compute::ComputeConfig& cc);

}  // namespace fp::serve
