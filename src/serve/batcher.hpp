// Dynamic micro-batching queue (DESIGN.md §12) — the serving plane's core.
//
// Handler threads park predict jobs in a bounded queue; ONE batcher thread
// coalesces up to `max_batch` samples (or whatever arrived within
// `max_delay_ms` of the first waiter), runs a single batched inference
// forward on the shared worker pool, and fans each job's logit rows back to
// its waiting handler. Concurrent load therefore rides the batched conv/GEMM
// path instead of N sequential single-sample forwards — the whole reason the
// PR 6 inference kernels pay off under traffic.
//
// Exactness: the batched forward is bit-identical per sample to a
// single-sample forward (row-blocked fp32 GEMM, per-row int8 quantization,
// per-tile Winograd transforms — no cross-sample reduction anywhere), so
// coalescing never changes a prediction. tests/test_serve.cpp pins this.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "serve/stats.hpp"
#include "tensor/tensor.hpp"

namespace fp::serve {

struct BatchConfig {
  std::int64_t max_batch = 32;   ///< samples per batched forward
  double max_delay_ms = 2.0;     ///< coalescing window after the first waiter
  std::int64_t queue_cap = 256;  ///< pending-sample bound (reject above)
};

class MicroBatcher {
 public:
  /// The batched forward: [n, c, h, w] -> [n, classes]. Runs on the batcher
  /// thread; the kernels inside parallelize over the shared pool.
  using ForwardFn = std::function<Tensor(const Tensor&)>;

  MicroBatcher(BatchConfig cfg, ForwardFn forward);
  ~MicroBatcher();
  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  void start();
  /// Completes every queued job, then joins the batcher thread. Idempotent.
  void stop();

  enum class Status {
    kOk,
    kOverloaded,  ///< queue_cap exceeded or batcher stopped (HTTP 503)
    kFailed,      ///< the forward threw (HTTP 500)
  };

  /// Blocking: enqueues x ([n, c, h, w]) and waits for its logits
  /// ([n, classes]). Thread-safe; any number of callers. `batch_samples`,
  /// when non-null, receives the size of the batched forward this request
  /// rode on (the X-FP-Batch response header).
  Status predict(const Tensor& x, Tensor* logits,
                 std::int64_t* batch_samples = nullptr);

  const BatchStats& batch_stats() const { return stats_; }
  std::int64_t rejected() const;

 private:
  struct Job {
    const Tensor* x = nullptr;
    Tensor out;
    std::int64_t batch_samples = 0;
    bool done = false;
    bool failed = false;
  };

  void run();
  /// Executes one batch outside the lock; returns per-job outputs.
  void run_batch(const std::vector<Job*>& batch, std::int64_t samples);

  BatchConfig cfg_;
  ForwardFn forward_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;  ///< batcher waits for jobs
  std::condition_variable cv_done_;  ///< handlers wait for completion
  std::deque<Job*> queue_;
  std::int64_t queued_samples_ = 0;
  std::int64_t rejected_ = 0;
  bool stop_ = false;
  bool running_ = false;

  std::thread thread_;
  BatchStats stats_;
};

}  // namespace fp::serve
