#include "serve/stats.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fp::serve {

namespace {
constexpr double kLoSeconds = 1e-6;
// 10^(1/16): the per-bucket ratio of a 16-buckets-per-decade log grid.
const double kRatio = std::pow(10.0, 1.0 / LatencyHist::kBucketsPerDecade);
}  // namespace

void LatencyHist::record(double seconds) {
  if (!(seconds > 0.0)) seconds = kLoSeconds;
  int idx = static_cast<int>(
      std::floor(std::log10(seconds / kLoSeconds) * kBucketsPerDecade));
  if (idx < 0) idx = 0;
  if (idx >= kBuckets) idx = kBuckets - 1;
  buckets_[static_cast<std::size_t>(idx)].fetch_add(1,
                                                    std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_us_.fetch_add(static_cast<std::int64_t>(seconds * 1e6),
                      std::memory_order_relaxed);
}

double LatencyHist::total_s() const {
  return static_cast<double>(total_us_.load(std::memory_order_relaxed)) * 1e-6;
}

double LatencyHist::quantile(double q) const {
  const std::int64_t n = count();
  if (n <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, ceil), found by a prefix-sum scan.
  const std::int64_t rank =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(q * n)));
  std::int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen >= rank) {
      const double lo = kLoSeconds * std::pow(kRatio, i);
      return lo * std::sqrt(kRatio);  // geometric bucket midpoint
    }
  }
  return kLoSeconds * std::pow(kRatio, kBuckets);
}

std::string format_float(float v) {
  char buf[48];
  for (int prec = 6; prec <= 9; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, static_cast<double>(v));
    if (std::strtof(buf, nullptr) == v) break;
  }
  return buf;
}

std::string format_double(double v) {
  char buf[48];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace fp::serve
