// Serving-plane statistics (DESIGN.md §12): a lock-free log-bucketed latency
// histogram (p50/p95/p99 for /metricsz and the [serve] summary line) and a
// batch-size accumulator for the micro-batcher.
//
// Both are plain atomic counters so handler threads record without locking;
// quantiles are computed on demand by a reader (monitoring endpoint), which
// tolerates the benign raciness of concurrent recording.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace fp::serve {

/// Log-spaced histogram over [1us, 100s): 16 buckets per decade, 8 decades.
/// Anything above the range clamps into the last bucket.
class LatencyHist {
 public:
  static constexpr int kBucketsPerDecade = 16;
  static constexpr int kDecades = 8;
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;

  void record(double seconds);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_s() const;

  /// Quantile in seconds (q in [0,1]); 0 when empty. Returns the geometric
  /// midpoint of the bucket holding the q-th sample.
  double quantile(double q) const;

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> total_us_{0};
};

/// Per-batch size accumulator (mean/max batch size in /metricsz).
class BatchStats {
 public:
  void record(std::int64_t batch_size) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(batch_size, std::memory_order_relaxed);
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (batch_size > cur && !max_.compare_exchange_weak(
                                   cur, batch_size, std::memory_order_relaxed)) {
    }
  }

  std::int64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  std::int64_t samples() const { return samples_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::int64_t b = batches();
    return b > 0 ? static_cast<double>(samples()) / static_cast<double>(b) : 0.0;
  }

 private:
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> samples_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Round-trippable float spelling (shortest %g that parses back exactly).
/// The serving wire format's float formatter: offline and served renderings
/// of the same logits are byte-identical because both go through this.
std::string format_float(float v);
std::string format_double(double v);

}  // namespace fp::serve
