// The batched HTTP inference server (DESIGN.md §12).
//
// Topology: one acceptor thread parks connections onto thread-per-connection
// handlers; handlers parse JSON predict requests and block in the
// micro-batcher, whose single batcher thread runs the only model forwards
// (BuiltModel is not thread-safe — funneling every forward through one
// thread is the synchronization story, and the batched kernels still
// parallelize internally over the shared worker pool).
//
// Endpoints:
//   POST /v1/predict  — wire_json request/response; X-FP-Batch response
//                       header reports the batch the forward rode on
//   GET  /healthz     — "ok\n" once the model is loaded and serving
//   GET  /metricsz    — JSON counters + latency quantiles + batch stats
//
// Shutdown order matters: stop accepting, let handlers observe the stop flag
// (read_request polls with short timeouts), join them, THEN stop the batcher
// so every in-flight predict completes rather than erroring.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "serve/batcher.hpp"
#include "serve/model_host.hpp"
#include "serve/stats.hpp"

namespace fp::serve {

struct ServeConfig {
  std::string host = "127.0.0.1";
  int port = 8080;               ///< 0 = ephemeral (tests)
  std::int64_t max_batch = 32;
  double max_delay_ms = 2.0;
  std::int64_t queue_cap = 256;
  std::int64_t max_conns = 64;
};

/// Maps a spec's serve.* keys onto a ServeConfig.
ServeConfig serve_config_of(const exp::ExperimentSpec& spec);

class InferenceServer {
 public:
  InferenceServer(ServedModel model, ServeConfig cfg);
  ~InferenceServer();
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds the listener and starts the batcher + acceptor. Returns once the
  /// server is reachable, so port() is valid immediately after.
  void start();
  /// Drains in-flight work and joins every thread. Idempotent.
  void stop();

  int port() const;
  const std::string& host() const { return cfg_.host; }
  const ServedModel& model() const { return model_; }

  /// The /metricsz payload.
  std::string metrics_json() const;
  /// The end-of-run `[serve]` summary line.
  void print_summary(std::ostream& os) const;

  std::int64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  const LatencyHist& latency() const { return latency_; }
  const BatchStats& batch_stats() const { return batcher_.batch_stats(); }

 private:
  struct Reply {
    int status = 200;
    std::string content_type = "text/plain";
    std::string body;
    std::vector<std::pair<std::string, std::string>> extra_headers;
  };

  void accept_loop();
  void handle_conn(net::TcpConn conn);
  Reply route(const net::HttpRequest& req);
  Reply predict(const net::HttpRequest& req);

  ServedModel model_;
  ServeConfig cfg_;
  MicroBatcher batcher_;

  std::unique_ptr<net::TcpListener> listener_;
  std::thread acceptor_;
  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::atomic<std::int64_t> active_conns_{0};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> errors_{0};
  LatencyHist latency_;
};

/// Foreground serving loop shared by `fp_serve` and `fp_run --api`: starts
/// the server, prints the "listening on host:port" line (flushed, so
/// scripts can poll), blocks until SIGINT/SIGTERM, then stops cleanly and
/// prints the [serve] summary. Returns a process exit code.
int serve_until_signal(InferenceServer& server);

}  // namespace fp::serve
