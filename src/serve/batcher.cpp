#include "serve/batcher.hpp"

#include <chrono>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fp::serve {

MicroBatcher::MicroBatcher(BatchConfig cfg, ForwardFn forward)
    : cfg_(cfg), forward_(std::move(forward)) {}

MicroBatcher::~MicroBatcher() { stop(); }

void MicroBatcher::start() {
  std::lock_guard<std::mutex> lk(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void MicroBatcher::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_work_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
}

std::int64_t MicroBatcher::rejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

MicroBatcher::Status MicroBatcher::predict(const Tensor& x, Tensor* logits,
                                           std::int64_t* batch_samples) {
  const std::int64_t n = x.dim(0);
  Job job;
  job.x = &x;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!running_ || stop_ || queued_samples_ + n > cfg_.queue_cap) {
      ++rejected_;
      obs::counter("serve.rejected").add(1);
      return Status::kOverloaded;
    }
    queue_.push_back(&job);
    queued_samples_ += n;
    cv_work_.notify_one();
    cv_done_.wait(lk, [&job] { return job.done; });
  }
  if (batch_samples != nullptr) *batch_samples = job.batch_samples;
  if (job.failed) return Status::kFailed;
  *logits = std::move(job.out);
  return Status::kOk;
}

void MicroBatcher::run() {
  obs::set_thread_name("serve-batcher");
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    // Coalescing window: once the first job is in hand, wait up to
    // max_delay_ms for companions — unless a full batch is already queued
    // or batching is disabled (max_batch == 1).
    if (cfg_.max_batch > 1 && cfg_.max_delay_ms > 0.0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(cfg_.max_delay_ms));
      cv_work_.wait_until(lk, deadline, [this] {
        return stop_ || queued_samples_ >= cfg_.max_batch;
      });
    }
    // Take whole jobs up to max_batch samples; a single oversized job
    // (client batch > max_batch) runs alone rather than being split.
    std::vector<Job*> batch;
    std::int64_t samples = 0;
    while (!queue_.empty()) {
      Job* j = queue_.front();
      const std::int64_t n = j->x->dim(0);
      if (!batch.empty() && samples + n > cfg_.max_batch) break;
      queue_.pop_front();
      queued_samples_ -= n;
      batch.push_back(j);
      samples += n;
      if (samples >= cfg_.max_batch) break;
    }
    lk.unlock();
    run_batch(batch, samples);
    lk.lock();
    for (Job* j : batch) j->done = true;
    cv_done_.notify_all();
  }
}

void MicroBatcher::run_batch(const std::vector<Job*>& batch,
                             std::int64_t samples) {
  FP_TRACE_SCOPE_ARG("serve.batch", "serve", "samples", samples);
  for (Job* j : batch) j->batch_samples = samples;
  try {
    Tensor out;
    if (batch.size() == 1) {
      // Fast path: no copy — forward the caller's tensor directly.
      out = forward_(*batch[0]->x);
      batch[0]->out = std::move(out);
    } else {
      const Tensor& first = *batch[0]->x;
      Tensor x({samples, first.dim(1), first.dim(2), first.dim(3)});
      std::int64_t row = 0;
      for (const Job* j : batch) {
        x.set_rows(row, *j->x);
        row += j->x->dim(0);
      }
      out = forward_(x);
      row = 0;
      for (Job* j : batch) {
        const std::int64_t n = j->x->dim(0);
        j->out = out.slice_rows(row, n);
        row += n;
      }
    }
    stats_.record(samples);
    obs::counter("serve.batches").add(1);
    obs::counter("serve.samples").add(samples);
  } catch (const std::exception&) {
    for (Job* j : batch) j->failed = true;
    obs::counter("serve.errors").add(1);
  }
}

}  // namespace fp::serve
