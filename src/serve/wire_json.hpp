// The /v1/predict wire format (DESIGN.md §12).
//
// Request (single sample or batch; each sample is a flat NCHW pixel vector):
//   {"input":  [0.1, 0.2, ...]}                 — one sample
//   {"inputs": [[0.1, ...], [0.5, ...], ...]}   — a batch
//
// Response, one entry per input sample, in request order:
//   {"predictions":[{"label":3,"logits":[-0.1,...]}, ...]}
//
// Exactness contract: logits are rendered with the shortest float spelling
// that round-trips the binary value (serve::format_float), so a served
// response is BYTE-identical to the offline rendering of the same forward —
// tests and the CI smoke diff the two strings directly.
#pragma once

#include <stdexcept>
#include <string>

#include "tensor/tensor.hpp"

namespace fp::serve {

/// A client-side error: malformed JSON, wrong sample length, empty batch.
/// The server maps it to HTTP 400 with the message as the body.
struct BadRequest : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parses a /v1/predict body into an [n, c, h, w] tensor. Throws BadRequest
/// naming the offending sample and the expected element count.
Tensor parse_predict_request(const std::string& body, std::int64_t c,
                             std::int64_t h, std::int64_t w);

/// Renders logits [n, classes] as the response JSON (argmax label + the full
/// logit row per sample).
std::string render_predict_response(const Tensor& logits);

/// Renders one sample (or a whole batch) as a request body — the load
/// generator's and the tests' encoder, matching parse_predict_request.
std::string render_predict_request(const Tensor& x);

}  // namespace fp::serve
