// Wire codecs: how parameter blobs are framed for the (simulated) network.
//
// A real federated deployment never ships raw fp32 tensors: uplinks from edge
// devices are the scarce resource, so updates travel quantized or sparsified.
// This subsystem models that wire layer over `nn::ParamBlob`:
//
//  * `IdentityCodec` — dense fp32, bit-identical round-trip (the default;
//    keeps every historical golden hash unchanged).
//  * `Fp16Codec`     — IEEE half precision, round-to-nearest-even.
//  * `Int8Codec`     — per-tensor affine quantization (the blob is the tensor
//    on the wire): 8-bit codes against a [min, max] grid, max elementwise
//    error <= scale / 2.
//  * `TopKCodec`     — magnitude sparsification: keep the k = ceil(f * n)
//    largest-magnitude coordinates and ship (index, value) pairs. With
//    `delta` selection the magnitudes are measured against a reference blob
//    (the broadcast the client trained from), which is what makes top-k
//    meaningful on weights; the shipped values are the absolute parameters,
//    so kept coordinates decode exactly in both modes.
//
// Every codec is a pure function of its inputs (deterministic ties broken by
// index), so encoding may run concurrently from client worker threads.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/serialize.hpp"

namespace fp::comm {

enum class CodecKind : std::uint8_t { kIdentity, kFp16, kInt8, kTopK };

const char* codec_name(CodecKind kind);

/// Communication configuration carried in `fed::FlConfig::comm`.
struct CommConfig {
  CodecKind codec = CodecKind::kIdentity;
  /// TopKCodec: fraction of coordinates kept (k = max(1, ceil(f * n))).
  double topk_fraction = 0.05;
  /// TopKCodec: select by |blob - reference| when a reference is available
  /// (delta-vs-global selection); false selects by raw magnitude.
  bool topk_delta = true;
  /// Also run server->client broadcasts through the codec. Off by default:
  /// downlinks are cheap relative to uplinks and a lossy broadcast changes
  /// what every client trains from. TopK downlinks always stay dense (a
  /// sparsified broadcast without a client-side reference is destructive).
  bool compress_downlink = false;
  /// Convert wire sizes into simulated transfer time via comm::NetworkModel.
  /// Off by default so historical sim-time goldens are unchanged; byte
  /// accounting happens either way.
  bool model_network = false;
};

/// One framed transfer. `payload` is the encoded body; `wire_bytes()` adds
/// the fixed header a real framing would carry (kind, flags, element count,
/// body length).
struct WireMessage {
  CodecKind kind = CodecKind::kIdentity;
  bool delta = false;            ///< TopK: decoded against a reference blob
  std::uint64_t num_elems = 0;   ///< dense element count of the decoded blob
  std::vector<std::uint8_t> payload;

  static constexpr std::size_t kHeaderBytes = 16;
  std::int64_t wire_bytes() const {
    return static_cast<std::int64_t>(payload.size() + kHeaderBytes);
  }
};

class BlobCodec {
 public:
  virtual ~BlobCodec() = default;
  virtual CodecKind kind() const = 0;
  const char* name() const { return codec_name(kind()); }

  /// Encodes `blob`. `ref` is the receiver-known reference blob (the
  /// broadcast a client trained from); only TopK delta selection uses it.
  virtual WireMessage encode(const nn::ParamBlob& blob,
                             const nn::ParamBlob* ref = nullptr) const = 0;

  /// Decodes back to a dense blob. `ref` must be the same reference passed
  /// to encode (TopK delta messages fill unsent coordinates from it).
  virtual nn::ParamBlob decode(const WireMessage& msg,
                               const nn::ParamBlob* ref = nullptr) const = 0;
};

class IdentityCodec final : public BlobCodec {
 public:
  CodecKind kind() const override { return CodecKind::kIdentity; }
  WireMessage encode(const nn::ParamBlob& blob,
                     const nn::ParamBlob* ref = nullptr) const override;
  nn::ParamBlob decode(const WireMessage& msg,
                       const nn::ParamBlob* ref = nullptr) const override;
};

class Fp16Codec final : public BlobCodec {
 public:
  CodecKind kind() const override { return CodecKind::kFp16; }
  WireMessage encode(const nn::ParamBlob& blob,
                     const nn::ParamBlob* ref = nullptr) const override;
  nn::ParamBlob decode(const WireMessage& msg,
                       const nn::ParamBlob* ref = nullptr) const override;
};

class Int8Codec final : public BlobCodec {
 public:
  CodecKind kind() const override { return CodecKind::kInt8; }
  WireMessage encode(const nn::ParamBlob& blob,
                     const nn::ParamBlob* ref = nullptr) const override;
  nn::ParamBlob decode(const WireMessage& msg,
                       const nn::ParamBlob* ref = nullptr) const override;

  /// The quantization grid step encode would use: (max - min) / 255. The
  /// max elementwise round-trip error is half of this.
  static double grid_step(const nn::ParamBlob& blob);
};

class TopKCodec final : public BlobCodec {
 public:
  explicit TopKCodec(double fraction, bool delta = true)
      : fraction_(fraction), delta_(delta) {}

  CodecKind kind() const override { return CodecKind::kTopK; }
  WireMessage encode(const nn::ParamBlob& blob,
                     const nn::ParamBlob* ref = nullptr) const override;
  nn::ParamBlob decode(const WireMessage& msg,
                       const nn::ParamBlob* ref = nullptr) const override;

  std::size_t kept_count(std::size_t n) const;

 private:
  double fraction_;
  bool delta_;
};

/// Builds the codec selected by `cfg.codec`.
std::unique_ptr<BlobCodec> make_codec(const CommConfig& cfg);

// IEEE 754 binary16 conversions (round-to-nearest-even), exposed for tests.
std::uint16_t float_to_half(float value);
float half_to_float(std::uint16_t half);

}  // namespace fp::comm
