#include "comm/network.hpp"

namespace fp::comm {

namespace {
double transfer_s(double bytes_per_s, double latency_s, std::int64_t bytes) {
  if (bytes <= 0 || bytes_per_s <= 0.0) return 0.0;
  return latency_s + static_cast<double>(bytes) / bytes_per_s;
}
}  // namespace

double NetworkModel::download_s(const sys::DeviceInstance& device,
                                std::int64_t wire_bytes) const {
  if (!enabled_) return 0.0;
  return transfer_s(device.net_down_bytes_per_s, device.net_latency_s,
                    wire_bytes);
}

double NetworkModel::upload_s(const sys::DeviceInstance& device,
                              std::int64_t wire_bytes) const {
  if (!enabled_) return 0.0;
  return transfer_s(device.net_up_bytes_per_s, device.net_latency_s,
                    wire_bytes);
}

double NetworkModel::round_trip_s(const sys::DeviceInstance& device,
                                  std::int64_t bytes_down,
                                  std::int64_t bytes_up) const {
  return download_s(device, bytes_down) + upload_s(device, bytes_up);
}

}  // namespace fp::comm
