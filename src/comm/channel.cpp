#include "comm/channel.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fp::comm {

Channel::Channel(const CommConfig& cfg)
    : cfg_(cfg), codec_(make_codec(cfg)), net_(cfg.model_network) {}

std::int64_t Channel::dense_wire_bytes(const nn::ParamBlob& blob) {
  return static_cast<std::int64_t>(blob.size() * sizeof(float)) +
         static_cast<std::int64_t>(WireMessage::kHeaderBytes);
}

nn::ParamBlob Channel::downlink(nn::ParamBlob blob,
                                std::int64_t* wire_bytes) const {
  obs::PhaseTimer encode_phase(obs::Phase::kEncode);
  FP_TRACE_SCOPE_ARG("downlink", "comm", "floats",
                     static_cast<std::int64_t>(blob.size()));
  const bool dense = !cfg_.compress_downlink ||
                     codec_->kind() == CodecKind::kIdentity ||
                     codec_->kind() == CodecKind::kTopK;
  if (dense) {
    // Identity framing: skip the encode/decode copy, the bytes are the
    // dense fp32 payload either way and the values are bit-identical.
    if (wire_bytes) *wire_bytes += dense_wire_bytes(blob);
    return blob;
  }
  const WireMessage msg = codec_->encode(blob, nullptr);
  if (wire_bytes) *wire_bytes += msg.wire_bytes();
  return codec_->decode(msg, nullptr);
}

nn::ParamBlob Channel::uplink(nn::ParamBlob blob, const nn::ParamBlob* ref,
                              std::int64_t* wire_bytes) const {
  obs::PhaseTimer encode_phase(obs::Phase::kEncode);
  FP_TRACE_SCOPE_ARG("uplink", "comm", "floats",
                     static_cast<std::int64_t>(blob.size()));
  if (codec_->kind() == CodecKind::kIdentity) {
    if (wire_bytes) *wire_bytes += dense_wire_bytes(blob);
    return blob;  // bit-identical fast path keeps golden hashes exact
  }
  const WireMessage msg = codec_->encode(blob, ref);
  if (wire_bytes) *wire_bytes += msg.wire_bytes();
  return codec_->decode(msg, ref);
}

WireMessage Channel::encode_down(const nn::ParamBlob& blob) const {
  obs::PhaseTimer encode_phase(obs::Phase::kEncode);
  FP_TRACE_SCOPE("encode_down", "comm");
  const bool dense = !cfg_.compress_downlink ||
                     codec_->kind() == CodecKind::kIdentity ||
                     codec_->kind() == CodecKind::kTopK;
  if (dense) return IdentityCodec().encode(blob);
  return codec_->encode(blob, nullptr);
}

WireMessage Channel::encode_up(const nn::ParamBlob& blob,
                               const nn::ParamBlob* ref) const {
  obs::PhaseTimer encode_phase(obs::Phase::kEncode);
  FP_TRACE_SCOPE("encode_up", "comm");
  if (codec_->kind() == CodecKind::kIdentity)
    return IdentityCodec().encode(blob);
  return codec_->encode(blob, ref);
}

nn::ParamBlob Channel::decode(const WireMessage& msg,
                              const nn::ParamBlob* ref) const {
  obs::PhaseTimer encode_phase(obs::Phase::kEncode);
  FP_TRACE_SCOPE("decode", "comm");
  switch (msg.kind) {
    case CodecKind::kIdentity:
      return IdentityCodec().decode(msg);
    case CodecKind::kFp16:
      return Fp16Codec().decode(msg);
    case CodecKind::kInt8:
      return Int8Codec().decode(msg);
    case CodecKind::kTopK:
      // The fraction only steers encode-side selection; decode reads the
      // kept pairs and the delta flag off the message itself.
      return TopKCodec(cfg_.topk_fraction, msg.delta).decode(msg, ref);
  }
  throw std::invalid_argument("Channel::decode: unknown codec kind");
}

}  // namespace fp::comm
