#include "comm/channel.hpp"

namespace fp::comm {

Channel::Channel(const CommConfig& cfg)
    : cfg_(cfg), codec_(make_codec(cfg)), net_(cfg.model_network) {}

std::int64_t Channel::dense_wire_bytes(const nn::ParamBlob& blob) {
  return static_cast<std::int64_t>(blob.size() * sizeof(float)) +
         static_cast<std::int64_t>(WireMessage::kHeaderBytes);
}

nn::ParamBlob Channel::downlink(nn::ParamBlob blob,
                                std::int64_t* wire_bytes) const {
  const bool dense = !cfg_.compress_downlink ||
                     codec_->kind() == CodecKind::kIdentity ||
                     codec_->kind() == CodecKind::kTopK;
  if (dense) {
    // Identity framing: skip the encode/decode copy, the bytes are the
    // dense fp32 payload either way and the values are bit-identical.
    if (wire_bytes) *wire_bytes += dense_wire_bytes(blob);
    return blob;
  }
  const WireMessage msg = codec_->encode(blob, nullptr);
  if (wire_bytes) *wire_bytes += msg.wire_bytes();
  return codec_->decode(msg, nullptr);
}

nn::ParamBlob Channel::uplink(nn::ParamBlob blob, const nn::ParamBlob* ref,
                              std::int64_t* wire_bytes) const {
  if (codec_->kind() == CodecKind::kIdentity) {
    if (wire_bytes) *wire_bytes += dense_wire_bytes(blob);
    return blob;  // bit-identical fast path keeps golden hashes exact
  }
  const WireMessage msg = codec_->encode(blob, ref);
  if (wire_bytes) *wire_bytes += msg.wire_bytes();
  return codec_->decode(msg, ref);
}

}  // namespace fp::comm
