// The engine-owned communication channel: every server->client broadcast and
// client->server upload of the federated runtime is routed through here. The
// channel applies the configured wire codec (encode immediately followed by
// decode — the simulation has no real network, but the lossy round-trip and
// the byte counts are exactly what a deployment would see) and exposes the
// NetworkModel the schedulers price transfers with.
//
// All methods are const and pure: uplinks may run concurrently from client
// worker threads (the engine aggregates byte counts on its own thread).
#pragma once

#include <cstdint>
#include <memory>

#include "comm/codec.hpp"
#include "comm/network.hpp"

namespace fp::comm {

class Channel {
 public:
  explicit Channel(const CommConfig& cfg);

  const CommConfig& config() const { return cfg_; }
  const BlobCodec& codec() const { return *codec_; }
  const NetworkModel& network() const { return net_; }

  /// True when the configured codec round-trips bit-exactly (IdentityCodec):
  /// callers that serialize state solely to push it through the channel may
  /// skip the re-load, since the decoded blob is the one they encoded.
  bool lossless() const { return codec_->kind() == CodecKind::kIdentity; }

  /// Server->client broadcast: returns the blob as the client receives it and
  /// adds the framed wire size to *wire_bytes (if given). Dense (identity
  /// framing) unless `compress_downlink` is set; TopK downlinks always stay
  /// dense — without a client-side reference a sparsified broadcast would
  /// zero most of the model.
  nn::ParamBlob downlink(nn::ParamBlob blob, std::int64_t* wire_bytes) const;

  /// Client->server upload: returns the blob as the server decodes it and
  /// adds the framed wire size to *wire_bytes (if given). `ref` is the blob
  /// both ends already share (the broadcast the client trained from); TopK
  /// delta selection measures magnitudes against it and fills unsent
  /// coordinates from it.
  nn::ParamBlob uplink(nn::ParamBlob blob, const nn::ParamBlob* ref,
                       std::int64_t* wire_bytes) const;

  // ---- Split halves for the distributed runtime (DESIGN.md §10) -----------
  // downlink()/uplink() fuse encode+decode because the simulation has both
  // ends in one process. Over a real socket the encode happens on the
  // sender, the decode on the receiver, and the WireMessage in between IS
  // the wire format. The halves preserve the fused paths' exact semantics:
  // encode_down(b) framing matches downlink's dense/compressed rule,
  // decode(encode_up(b, ref), ref) is bit-identical to uplink(b, ref), and
  // wire_bytes() of the returned message equals the fused byte accounting.

  /// The message downlink() would put on the wire (dense identity framing
  /// unless compress_downlink selects the codec; TopK broadcasts stay dense).
  WireMessage encode_down(const nn::ParamBlob& blob) const;

  /// The message uplink() would put on the wire (identity framing for the
  /// identity codec, the configured codec otherwise).
  WireMessage encode_up(const nn::ParamBlob& blob,
                        const nn::ParamBlob* ref) const;

  /// Decodes any message by its own codec kind — messages are
  /// self-describing, so the receiver needs no out-of-band codec agreement.
  /// `ref` must be the reference blob the encoder used (nullptr for none).
  nn::ParamBlob decode(const WireMessage& msg,
                       const nn::ParamBlob* ref = nullptr) const;

 private:
  static std::int64_t dense_wire_bytes(const nn::ParamBlob& blob);

  CommConfig cfg_;
  std::unique_ptr<BlobCodec> codec_;
  NetworkModel net_;
};

}  // namespace fp::comm
