// The engine-owned communication channel: every server->client broadcast and
// client->server upload of the federated runtime is routed through here. The
// channel applies the configured wire codec (encode immediately followed by
// decode — the simulation has no real network, but the lossy round-trip and
// the byte counts are exactly what a deployment would see) and exposes the
// NetworkModel the schedulers price transfers with.
//
// All methods are const and pure: uplinks may run concurrently from client
// worker threads (the engine aggregates byte counts on its own thread).
#pragma once

#include <cstdint>
#include <memory>

#include "comm/codec.hpp"
#include "comm/network.hpp"

namespace fp::comm {

class Channel {
 public:
  explicit Channel(const CommConfig& cfg);

  const CommConfig& config() const { return cfg_; }
  const BlobCodec& codec() const { return *codec_; }
  const NetworkModel& network() const { return net_; }

  /// True when the configured codec round-trips bit-exactly (IdentityCodec):
  /// callers that serialize state solely to push it through the channel may
  /// skip the re-load, since the decoded blob is the one they encoded.
  bool lossless() const { return codec_->kind() == CodecKind::kIdentity; }

  /// Server->client broadcast: returns the blob as the client receives it and
  /// adds the framed wire size to *wire_bytes (if given). Dense (identity
  /// framing) unless `compress_downlink` is set; TopK downlinks always stay
  /// dense — without a client-side reference a sparsified broadcast would
  /// zero most of the model.
  nn::ParamBlob downlink(nn::ParamBlob blob, std::int64_t* wire_bytes) const;

  /// Client->server upload: returns the blob as the server decodes it and
  /// adds the framed wire size to *wire_bytes (if given). `ref` is the blob
  /// both ends already share (the broadcast the client trained from); TopK
  /// delta selection measures magnitudes against it and fills unsent
  /// coordinates from it.
  nn::ParamBlob uplink(nn::ParamBlob blob, const nn::ParamBlob* ref,
                       std::int64_t* wire_bytes) const;

 private:
  static std::int64_t dense_wire_bytes(const nn::ParamBlob& blob);

  CommConfig cfg_;
  std::unique_ptr<BlobCodec> codec_;
  NetworkModel net_;
};

}  // namespace fp::comm
