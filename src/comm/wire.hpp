// Frame serialization for the distributed runtime (DESIGN.md §10).
//
// A FrameWriter/FrameReader pair is the single encoding used for everything
// the root and workers exchange above the socket layer: handshake payloads,
// dispatch contexts (broadcast WireMessages + round scalars), task specs,
// and finished uploads. The format is a flat byte stream of fixed-width
// little-endian scalars and length-prefixed containers — no alignment, no
// padding, so a frame's bytes are a pure function of the written values and
// both ends of a connection (same build, same architecture) agree on it.
//
// Truncated or oversized reads throw WireError: a malformed frame must fail
// loudly at the field that broke, never yield garbage values.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/codec.hpp"

namespace fp::comm {

struct WireError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class FrameWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }

  /// u32 length + raw characters.
  void str(const std::string& s);
  /// u64 length + raw bytes.
  void bytes(const std::vector<std::uint8_t>& b);
  /// u64 element count + raw float bits (dense fp32 blob).
  void blob(const nn::ParamBlob& b);
  /// kind u8, delta u8, num_elems u64, u64 payload length + payload.
  void wire_msg(const WireMessage& msg);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n);
  std::vector<std::uint8_t> buf_;
};

class FrameReader {
 public:
  FrameReader(const std::uint8_t* data, std::size_t size)
      : p_(data), size_(size) {}
  explicit FrameReader(const std::vector<std::uint8_t>& buf)
      : FrameReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  float f32();
  double f64();
  std::string str();
  std::vector<std::uint8_t> bytes();
  nn::ParamBlob blob();
  WireMessage wire_msg();

  std::size_t remaining() const { return size_ - off_; }
  bool done() const { return off_ == size_; }

 private:
  void raw(void* p, std::size_t n);
  /// Validates a container length against the bytes actually left.
  std::size_t checked_count(std::uint64_t count, std::size_t elem_size);

  const std::uint8_t* p_;
  std::size_t size_;
  std::size_t off_ = 0;
};

}  // namespace fp::comm
