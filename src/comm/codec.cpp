#include "comm/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "tensor/quant.hpp"

namespace fp::comm {

namespace {

void append_bytes(std::vector<std::uint8_t>& out, const void* src,
                  std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  out.insert(out.end(), p, p + n);
}

void read_bytes(const std::vector<std::uint8_t>& in, std::size_t offset,
                void* dst, std::size_t n) {
  if (offset + n > in.size())
    throw std::invalid_argument("comm: truncated wire message");
  std::memcpy(dst, in.data() + offset, n);
}

void check_kind(const WireMessage& msg, CodecKind expect) {
  if (msg.kind != expect)
    throw std::invalid_argument("comm: wire message kind mismatch");
}

}  // namespace

const char* codec_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kIdentity: return "identity";
    case CodecKind::kFp16: return "fp16";
    case CodecKind::kInt8: return "int8";
    case CodecKind::kTopK: return "topk";
  }
  return "unknown";
}

// ---- IEEE binary16 ----------------------------------------------------------

std::uint16_t float_to_half(float value) {
  std::uint32_t f;
  std::memcpy(&f, &value, sizeof(f));
  const auto sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::uint32_t abs = f & 0x7fffffffu;

  if (abs >= 0x7f800000u)  // inf / NaN
    return static_cast<std::uint16_t>(
        sign | 0x7c00u | (abs > 0x7f800000u ? 0x200u : 0u));
  if (abs >= 0x47800000u) return sign | 0x7c00u;  // overflow -> inf

  if (abs < 0x38800000u) {  // half-subnormal range (or underflow to zero)
    const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    const int shift = 126 - static_cast<int>(abs >> 23);
    if (shift > 24) return sign;  // < 2^-25: rounds to zero
    std::uint32_t m = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half_ulp = 1u << (shift - 1);
    if (rem > half_ulp || (rem == half_ulp && (m & 1u))) ++m;
    return static_cast<std::uint16_t>(sign | m);
  }

  const std::uint32_t exp = (abs >> 23) - 112;
  std::uint16_t h = static_cast<std::uint16_t>(sign | (exp << 10) |
                                               ((abs & 0x7fffffu) >> 13));
  const std::uint32_t rem = abs & 0x1fffu;
  // Round to nearest even; a mantissa carry correctly bumps the exponent
  // (including 65520+ rounding up to infinity).
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
  return h;
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1fu;
  std::uint32_t mant = half & 0x3ffu;
  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;
    } else {  // subnormal: renormalize
      std::uint32_t e = 0;
      while (!(mant & 0x400u)) {
        mant <<= 1;
        ++e;
      }
      f = sign | ((113u - e) << 23) | ((mant & 0x3ffu) << 13);
    }
  } else if (exp == 31) {
    f = sign | 0x7f800000u | (mant << 13);
  } else {
    f = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &f, sizeof(out));
  return out;
}

// ---- IdentityCodec ----------------------------------------------------------

WireMessage IdentityCodec::encode(const nn::ParamBlob& blob,
                                  const nn::ParamBlob* /*ref*/) const {
  WireMessage msg;
  msg.kind = CodecKind::kIdentity;
  msg.num_elems = blob.size();
  msg.payload.resize(blob.size() * sizeof(float));
  if (!blob.empty())
    std::memcpy(msg.payload.data(), blob.data(), msg.payload.size());
  return msg;
}

nn::ParamBlob IdentityCodec::decode(const WireMessage& msg,
                                    const nn::ParamBlob* /*ref*/) const {
  check_kind(msg, CodecKind::kIdentity);
  nn::ParamBlob blob(msg.num_elems);
  if (msg.payload.size() != blob.size() * sizeof(float))
    throw std::invalid_argument("IdentityCodec: payload size mismatch");
  if (!blob.empty())
    std::memcpy(blob.data(), msg.payload.data(), msg.payload.size());
  return blob;
}

// ---- Fp16Codec --------------------------------------------------------------

WireMessage Fp16Codec::encode(const nn::ParamBlob& blob,
                              const nn::ParamBlob* /*ref*/) const {
  WireMessage msg;
  msg.kind = CodecKind::kFp16;
  msg.num_elems = blob.size();
  msg.payload.resize(blob.size() * sizeof(std::uint16_t));
  auto* out = reinterpret_cast<std::uint16_t*>(msg.payload.data());
  for (std::size_t i = 0; i < blob.size(); ++i) out[i] = float_to_half(blob[i]);
  return msg;
}

nn::ParamBlob Fp16Codec::decode(const WireMessage& msg,
                                const nn::ParamBlob* /*ref*/) const {
  check_kind(msg, CodecKind::kFp16);
  if (msg.payload.size() != msg.num_elems * sizeof(std::uint16_t))
    throw std::invalid_argument("Fp16Codec: payload size mismatch");
  nn::ParamBlob blob(msg.num_elems);
  const auto* in = reinterpret_cast<const std::uint16_t*>(msg.payload.data());
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = half_to_float(in[i]);
  return blob;
}

// ---- Int8Codec --------------------------------------------------------------

// The affine-parameter derivation, rounding, and error bound all live in
// tensor/quant.hpp (quant::AffineGrid) — shared with the fake-quantization
// grid and the int8 GEMM packs so there is one quantization implementation.

double Int8Codec::grid_step(const nn::ParamBlob& blob) {
  if (blob.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(blob.begin(), blob.end());
  return static_cast<double>(quant::affine_grid(*lo, *hi).scale);
}

WireMessage Int8Codec::encode(const nn::ParamBlob& blob,
                              const nn::ParamBlob* /*ref*/) const {
  WireMessage msg;
  msg.kind = CodecKind::kInt8;
  msg.num_elems = blob.size();
  if (blob.empty()) return msg;

  const auto [lo_it, hi_it] = std::minmax_element(blob.begin(), blob.end());
  // Affine grid: x ~ lo + scale * q, q in [0, 255]. A constant blob encodes
  // with scale 0 and decodes exactly to lo.
  const quant::AffineGrid grid = quant::affine_grid(*lo_it, *hi_it);

  msg.payload.reserve(2 * sizeof(float) + blob.size());
  append_bytes(msg.payload, &grid.lo, sizeof(grid.lo));
  append_bytes(msg.payload, &grid.scale, sizeof(grid.scale));
  for (const float x : blob) msg.payload.push_back(quant::affine_encode(grid, x));
  return msg;
}

nn::ParamBlob Int8Codec::decode(const WireMessage& msg,
                                const nn::ParamBlob* /*ref*/) const {
  check_kind(msg, CodecKind::kInt8);
  nn::ParamBlob blob(msg.num_elems);
  if (blob.empty()) return blob;
  if (msg.payload.size() != 2 * sizeof(float) + msg.num_elems)
    throw std::invalid_argument("Int8Codec: payload size mismatch");
  quant::AffineGrid grid;
  read_bytes(msg.payload, 0, &grid.lo, sizeof(grid.lo));
  read_bytes(msg.payload, sizeof(grid.lo), &grid.scale, sizeof(grid.scale));
  const std::uint8_t* codes = msg.payload.data() + 2 * sizeof(float);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = quant::affine_decode(grid, codes[i]);
  return blob;
}

// ---- TopKCodec --------------------------------------------------------------

std::size_t TopKCodec::kept_count(std::size_t n) const {
  if (n == 0) return 0;
  const double want = std::ceil(fraction_ * static_cast<double>(n));
  return std::clamp<std::size_t>(static_cast<std::size_t>(std::max(want, 1.0)),
                                 1, n);
}

WireMessage TopKCodec::encode(const nn::ParamBlob& blob,
                              const nn::ParamBlob* ref) const {
  const bool use_delta = delta_ && ref != nullptr;
  if (use_delta && ref->size() != blob.size())
    throw std::invalid_argument("TopKCodec: reference size mismatch");
  if (blob.size() > 0xffffffffull)
    throw std::invalid_argument("TopKCodec: blob too large for u32 indices");

  WireMessage msg;
  msg.kind = CodecKind::kTopK;
  msg.delta = use_delta;
  msg.num_elems = blob.size();
  const std::size_t k = kept_count(blob.size());
  if (k == 0) return msg;

  // Selection magnitude: |blob - ref| in delta mode, |blob| otherwise. Ties
  // break toward the lower index so the selection is a pure function of the
  // inputs (deterministic at any thread count).
  auto magnitude = [&](std::size_t i) {
    const float v = use_delta ? blob[i] - (*ref)[i] : blob[i];
    return std::fabs(v);
  };
  std::vector<std::uint32_t> idx(blob.size());
  std::iota(idx.begin(), idx.end(), 0u);
  const auto larger = [&](std::uint32_t a, std::uint32_t b) {
    const float ma = magnitude(a), mb = magnitude(b);
    if (ma != mb) return ma > mb;
    return a < b;
  };
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   idx.end(), larger);
  idx.resize(k);
  std::sort(idx.begin(), idx.end());  // index-ordered pairs decode cache-hot

  // The shipped value is the ABSOLUTE parameter (selection only uses the
  // delta), so kept coordinates decode exactly in both modes.
  msg.payload.reserve(k * (sizeof(std::uint32_t) + sizeof(float)));
  for (const std::uint32_t i : idx) {
    append_bytes(msg.payload, &i, sizeof(i));
    append_bytes(msg.payload, &blob[i], sizeof(float));
  }
  return msg;
}

nn::ParamBlob TopKCodec::decode(const WireMessage& msg,
                                const nn::ParamBlob* ref) const {
  check_kind(msg, CodecKind::kTopK);
  if (msg.payload.size() % (sizeof(std::uint32_t) + sizeof(float)) != 0)
    throw std::invalid_argument("TopKCodec: payload size mismatch");
  nn::ParamBlob blob;
  if (msg.delta) {
    if (ref == nullptr || ref->size() != msg.num_elems)
      throw std::invalid_argument("TopKCodec: delta message needs reference");
    blob = *ref;  // unsent coordinates keep the reference value
  } else {
    blob.assign(msg.num_elems, 0.0f);  // unsent coordinates densify to zero
  }
  const std::size_t pairs =
      msg.payload.size() / (sizeof(std::uint32_t) + sizeof(float));
  std::size_t off = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    std::uint32_t i = 0;
    float v = 0.0f;
    read_bytes(msg.payload, off, &i, sizeof(i));
    off += sizeof(i);
    read_bytes(msg.payload, off, &v, sizeof(v));
    off += sizeof(v);
    if (i >= blob.size())
      throw std::invalid_argument("TopKCodec: index out of range");
    blob[i] = v;
  }
  return blob;
}

std::unique_ptr<BlobCodec> make_codec(const CommConfig& cfg) {
  switch (cfg.codec) {
    case CodecKind::kIdentity: return std::make_unique<IdentityCodec>();
    case CodecKind::kFp16: return std::make_unique<Fp16Codec>();
    case CodecKind::kInt8: return std::make_unique<Int8Codec>();
    case CodecKind::kTopK:
      return std::make_unique<TopKCodec>(cfg.topk_fraction, cfg.topk_delta);
  }
  throw std::invalid_argument("make_codec: unknown codec kind");
}

}  // namespace fp::comm
