#include "comm/wire.hpp"

#include <cstring>

namespace fp::comm {

// ---- FrameWriter ------------------------------------------------------------

void FrameWriter::raw(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void FrameWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void FrameWriter::bytes(const std::vector<std::uint8_t>& b) {
  u64(b.size());
  raw(b.data(), b.size());
}

void FrameWriter::blob(const nn::ParamBlob& b) {
  u64(b.size());
  raw(b.data(), b.size() * sizeof(float));
}

void FrameWriter::wire_msg(const WireMessage& msg) {
  u8(static_cast<std::uint8_t>(msg.kind));
  u8(msg.delta ? 1 : 0);
  u64(msg.num_elems);
  bytes(msg.payload);
}

// ---- FrameReader ------------------------------------------------------------

void FrameReader::raw(void* p, std::size_t n) {
  if (size_ - off_ < n) throw WireError("frame truncated");
  std::memcpy(p, p_ + off_, n);
  off_ += n;
}

std::size_t FrameReader::checked_count(std::uint64_t count,
                                       std::size_t elem_size) {
  if (count > (size_ - off_) / (elem_size ? elem_size : 1))
    throw WireError("frame container length exceeds frame size");
  return static_cast<std::size_t>(count);
}

std::uint8_t FrameReader::u8() {
  std::uint8_t v;
  raw(&v, sizeof(v));
  return v;
}

std::uint32_t FrameReader::u32() {
  std::uint32_t v;
  raw(&v, sizeof(v));
  return v;
}

std::uint64_t FrameReader::u64() {
  std::uint64_t v;
  raw(&v, sizeof(v));
  return v;
}

std::int64_t FrameReader::i64() {
  std::int64_t v;
  raw(&v, sizeof(v));
  return v;
}

float FrameReader::f32() {
  float v;
  raw(&v, sizeof(v));
  return v;
}

double FrameReader::f64() {
  double v;
  raw(&v, sizeof(v));
  return v;
}

std::string FrameReader::str() {
  const std::size_t n = checked_count(u32(), 1);
  std::string s(n, '\0');
  raw(s.data(), n);
  return s;
}

std::vector<std::uint8_t> FrameReader::bytes() {
  const std::size_t n = checked_count(u64(), 1);
  std::vector<std::uint8_t> b(n);
  raw(b.data(), n);
  return b;
}

nn::ParamBlob FrameReader::blob() {
  const std::size_t n = checked_count(u64(), sizeof(float));
  nn::ParamBlob b(n);
  raw(b.data(), n * sizeof(float));
  return b;
}

WireMessage FrameReader::wire_msg() {
  WireMessage msg;
  const std::uint8_t kind = u8();
  if (kind > static_cast<std::uint8_t>(CodecKind::kTopK))
    throw WireError("frame carries an unknown codec kind");
  msg.kind = static_cast<CodecKind>(kind);
  msg.delta = u8() != 0;
  msg.num_elems = u64();
  msg.payload = bytes();
  return msg;
}

}  // namespace fp::comm
