// Bandwidth-aware network model: converts WireMessage sizes into simulated
// transfer time on a device's (degraded) up/downlink. Disabled by default so
// the historical sim-time goldens are unchanged; byte accounting is always
// active regardless. See DESIGN.md §5.
#pragma once

#include <cstdint>

#include "sysmodel/device.hpp"

namespace fp::comm {

class NetworkModel {
 public:
  NetworkModel() = default;
  explicit NetworkModel(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Seconds to push `wire_bytes` from the server to the device: one link
  /// latency plus bytes over the degraded downlink bandwidth. Zero when the
  /// model is disabled, nothing is transferred, or the device has no link.
  double download_s(const sys::DeviceInstance& device,
                    std::int64_t wire_bytes) const;

  /// Seconds to push `wire_bytes` from the device to the server.
  double upload_s(const sys::DeviceInstance& device,
                  std::int64_t wire_bytes) const;

  /// download_s + upload_s — one client's full round-trip transfer cost.
  double round_trip_s(const sys::DeviceInstance& device,
                      std::int64_t bytes_down, std::int64_t bytes_up) const;

 private:
  bool enabled_ = false;
};

/// Edge-aggregator backbone link for hierarchical aggregation (DESIGN.md §9):
/// an edge node forwards its merged blob to the server over a fixed-capacity
/// backhaul, one latency plus bytes over bandwidth. Unlike client links this
/// is not degraded per round — backbones are provisioned, devices are not.
struct EdgeLink {
  double up_mbps = 100.0;
  double latency_s = 0.01;

  /// Seconds to push `wire_bytes` edge→server; zero when nothing moves.
  double upload_s(std::int64_t wire_bytes) const {
    if (wire_bytes <= 0 || up_mbps <= 0.0) return 0.0;
    return latency_s +
           static_cast<double>(wire_bytes) / (up_mbps * 1e6 / 8.0);
  }
};

}  // namespace fp::comm
