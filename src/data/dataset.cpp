#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace fp::data {

Dataset Dataset::subset(const std::vector<std::int64_t>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  if (indices.empty()) return out;
  std::vector<std::int64_t> shape = images.shape();
  shape[0] = static_cast<std::int64_t>(indices.size());
  out.images = Tensor(shape);
  out.labels.reserve(indices.size());
  const std::int64_t per = images.numel() / images.dim(0);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t src = indices[i];
    if (src < 0 || src >= size()) throw std::out_of_range("Dataset::subset");
    std::copy_n(images.data() + src * per, per,
                out.images.data() + static_cast<std::int64_t>(i) * per);
    out.labels.push_back(labels[static_cast<std::size_t>(src)]);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  if (other.size() == 0) return;
  if (size() == 0) {
    *this = other;
    return;
  }
  if (images.ndim() != other.images.ndim())
    throw std::invalid_argument("Dataset::append: rank mismatch");
  std::vector<std::int64_t> shape = images.shape();
  shape[0] += other.images.dim(0);
  Tensor merged(shape);
  std::copy_n(images.data(), images.numel(), merged.data());
  std::copy_n(other.images.data(), other.images.numel(),
              merged.data() + images.numel());
  images = std::move(merged);
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

std::vector<std::int64_t> Dataset::class_histogram() const {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(num_classes), 0);
  for (const auto y : labels) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

BatchIterator::BatchIterator(const Dataset& dataset, std::int64_t batch_size,
                             Rng& rng)
    : dataset_(dataset),
      batch_size_(std::min<std::int64_t>(batch_size, std::max<std::int64_t>(
                                                         1, dataset.size()))),
      rng_(rng) {
  if (dataset_.size() == 0) throw std::invalid_argument("BatchIterator: empty dataset");
  order_.resize(static_cast<std::size_t>(dataset_.size()));
  for (std::size_t i = 0; i < order_.size(); ++i)
    order_[i] = static_cast<std::int64_t>(i);
  reshuffle();
}

void BatchIterator::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

std::int64_t BatchIterator::batches_per_epoch() const {
  return std::max<std::int64_t>(1, dataset_.size() / batch_size_);
}

Batch BatchIterator::next() {
  if (cursor_ + batch_size_ > dataset_.size()) reshuffle();
  std::vector<std::int64_t> idx(order_.begin() + cursor_,
                                order_.begin() + cursor_ + batch_size_);
  cursor_ += batch_size_;
  const Dataset sub = dataset_.subset(idx);
  return {sub.images, sub.labels};
}

Batch take_batch(const Dataset& dataset, std::int64_t start, std::int64_t count) {
  count = std::min(count, dataset.size() - start);
  Batch b;
  b.x = dataset.images.slice_rows(start, count);
  b.y.assign(dataset.labels.begin() + start, dataset.labels.begin() + start + count);
  return b;
}

}  // namespace fp::data
