// In-memory labeled image dataset and batching utilities.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fp::data {

struct Dataset {
  Tensor images;                     ///< [N, C, H, W], pixel values in [0, 1]
  std::vector<std::int64_t> labels;  ///< class index per sample
  std::int64_t num_classes = 0;

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }

  /// Gathers the given sample indices into a new dataset.
  Dataset subset(const std::vector<std::int64_t>& indices) const;

  /// Appends another dataset (shapes must agree).
  void append(const Dataset& other);

  /// Per-class sample counts.
  std::vector<std::int64_t> class_histogram() const;
};

struct Batch {
  Tensor x;                          ///< [B, C, H, W]
  std::vector<std::int64_t> y;
};

/// Shuffling mini-batch iterator. Reshuffles on every epoch() call.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, std::int64_t batch_size, Rng& rng);

  /// Returns the next batch, wrapping around (and reshuffling) at the end of
  /// an epoch. Batches are full-size; the tail remainder joins the reshuffle.
  Batch next();

  std::int64_t batches_per_epoch() const;

 private:
  void reshuffle();
  const Dataset& dataset_;
  std::int64_t batch_size_;
  Rng& rng_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

/// Gathers samples [start, start+count) in the dataset's natural order.
Batch take_batch(const Dataset& dataset, std::int64_t start, std::int64_t count);

}  // namespace fp::data
