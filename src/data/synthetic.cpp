#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace fp::data {

namespace {

/// Bilinearly upsamples a coarse [C, K, K] grid to [C, S, S], giving smooth
/// low-frequency class templates.
Tensor upsample_bilinear(const Tensor& coarse, std::int64_t s) {
  const std::int64_t c = coarse.dim(0), k = coarse.dim(1);
  Tensor out({c, s, s});
  const float scale = static_cast<float>(k - 1) / static_cast<float>(s - 1);
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t y = 0; y < s; ++y)
      for (std::int64_t x = 0; x < s; ++x) {
        const float fy = static_cast<float>(y) * scale;
        const float fx = static_cast<float>(x) * scale;
        const std::int64_t y0 = static_cast<std::int64_t>(fy);
        const std::int64_t x0 = static_cast<std::int64_t>(fx);
        const std::int64_t y1 = std::min(y0 + 1, k - 1);
        const std::int64_t x1 = std::min(x0 + 1, k - 1);
        const float wy = fy - static_cast<float>(y0);
        const float wx = fx - static_cast<float>(x0);
        const float v00 = coarse[(ch * k + y0) * k + x0],
                    v01 = coarse[(ch * k + y0) * k + x1],
                    v10 = coarse[(ch * k + y1) * k + x0],
                    v11 = coarse[(ch * k + y1) * k + x1];
        out[(ch * s + y) * s + x] = (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                                    wy * ((1 - wx) * v10 + wx * v11);
      }
  return out;
}

/// Renders one sample: shifted template + brightness jitter + pixel noise.
void render_sample(const Tensor& tmpl, std::int64_t c, std::int64_t s,
                   const SyntheticConfig& cfg, Rng& rng, float* dst) {
  const std::int64_t shift_y =
      cfg.max_shift > 0
          ? static_cast<std::int64_t>(rng.uniform_int(
                static_cast<std::uint64_t>(2 * cfg.max_shift + 1))) - cfg.max_shift
          : 0;
  const std::int64_t shift_x =
      cfg.max_shift > 0
          ? static_cast<std::int64_t>(rng.uniform_int(
                static_cast<std::uint64_t>(2 * cfg.max_shift + 1))) - cfg.max_shift
          : 0;
  const float brightness = rng.uniform(0.85f, 1.15f);
  for (std::int64_t ch = 0; ch < c; ++ch)
    for (std::int64_t y = 0; y < s; ++y)
      for (std::int64_t x = 0; x < s; ++x) {
        const std::int64_t sy = std::clamp<std::int64_t>(y + shift_y, 0, s - 1);
        const std::int64_t sx = std::clamp<std::int64_t>(x + shift_x, 0, s - 1);
        float v = brightness * tmpl[(ch * s + sy) * s + sx] +
                  rng.gaussian(0.0f, cfg.noise_std);
        dst[(ch * s + y) * s + x] = std::clamp(v, 0.0f, 1.0f);
      }
}

Dataset render_split(const std::vector<Tensor>& templates,
                     const std::vector<std::int64_t>& class_counts,
                     const SyntheticConfig& cfg, Rng& rng) {
  std::int64_t total = 0;
  for (const auto n : class_counts) total += n;
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.images = Tensor({total, cfg.channels, cfg.image_size, cfg.image_size});
  ds.labels.reserve(static_cast<std::size_t>(total));
  const std::int64_t per = cfg.channels * cfg.image_size * cfg.image_size;
  std::int64_t row = 0;
  for (std::int64_t cls = 0; cls < cfg.num_classes; ++cls)
    for (std::int64_t i = 0; i < class_counts[static_cast<std::size_t>(cls)]; ++i) {
      render_sample(templates[static_cast<std::size_t>(cls)], cfg.channels,
                    cfg.image_size, cfg, rng, ds.images.data() + row * per);
      ds.labels.push_back(cls);
      ++row;
    }
  // Shuffle the rendered samples so class order carries no information.
  std::vector<std::int64_t> perm(static_cast<std::size_t>(total));
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<std::int64_t>(i);
  rng.shuffle(perm);
  return ds.subset(perm);
}

std::vector<std::int64_t> split_counts(const SyntheticConfig& cfg,
                                       std::int64_t total) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(cfg.num_classes), 0);
  if (!cfg.unbalanced_classes) {
    for (auto& c : counts) c = total / cfg.num_classes;
    counts[0] += total - (total / cfg.num_classes) * cfg.num_classes;
    return counts;
  }
  // Zipf-like class sizes: class i gets weight 1/(1 + i/4).
  double denom = 0.0;
  for (std::int64_t i = 0; i < cfg.num_classes; ++i)
    denom += 1.0 / (1.0 + static_cast<double>(i) / 4.0);
  std::int64_t assigned = 0;
  for (std::int64_t i = 0; i < cfg.num_classes; ++i) {
    const double w = (1.0 / (1.0 + static_cast<double>(i) / 4.0)) / denom;
    counts[static_cast<std::size_t>(i)] = std::max<std::int64_t>(
        2, static_cast<std::int64_t>(static_cast<double>(total) * w));
    assigned += counts[static_cast<std::size_t>(i)];
  }
  // Trim/top-up the largest class to hit the requested total.
  counts[0] += total - assigned;
  if (counts[0] < 2) counts[0] = 2;
  return counts;
}

}  // namespace

TrainTest make_synthetic(const SyntheticConfig& cfg) {
  Rng rng(cfg.seed);
  const auto k = static_cast<std::int64_t>(cfg.template_coarseness);
  std::vector<Tensor> templates;
  templates.reserve(static_cast<std::size_t>(cfg.num_classes));
  for (std::int64_t cls = 0; cls < cfg.num_classes; ++cls) {
    Tensor coarse = Tensor::rand_uniform({cfg.channels, k, k}, rng, 0.15f, 0.85f);
    templates.push_back(upsample_bilinear(coarse, cfg.image_size));
  }
  TrainTest out;
  out.train = render_split(templates, split_counts(cfg, cfg.train_size), cfg, rng);
  out.test = render_split(templates, split_counts(cfg, cfg.test_size), cfg, rng);
  return out;
}

SyntheticConfig synth_cifar_config() {
  SyntheticConfig cfg;
  cfg.num_classes = 10;
  cfg.image_size = 16;
  cfg.train_size = 4000;
  cfg.test_size = 1000;
  cfg.noise_std = 0.10f;
  cfg.seed = 42;
  return cfg;
}

SyntheticConfig synth_caltech_config() {
  SyntheticConfig cfg;
  cfg.num_classes = 32;
  cfg.image_size = 16;
  cfg.train_size = 3200;
  cfg.test_size = 800;
  cfg.noise_std = 0.14f;
  cfg.unbalanced_classes = true;
  cfg.seed = 1337;
  return cfg;
}

// --------------------------- LazyShardSource -------------------------------

namespace {

// Stream tags for plan-backed synthesis. Each split/client draws from
// Rng(mix_seed(seed, tag)) so streams are mutually independent and
// reconstructible from the plan alone.
constexpr std::uint64_t kShardStream = 0x5da4d001ULL;
constexpr std::uint64_t kTestStream = 0x7e57d002ULL;
constexpr std::uint64_t kPublicStream = 0x9ab1d003ULL;

}  // namespace

LazyShardSource::LazyShardSource(const ShardPlan& plan) : plan_(plan) {
  // Same template draws as make_synthetic: one Rng(seed), one coarse grid per
  // class, bilinear upsample. Templates are the only resident tensor state.
  const SyntheticConfig& cfg = plan_.synth;
  Rng rng(cfg.seed);
  const auto k = static_cast<std::int64_t>(cfg.template_coarseness);
  templates_.reserve(static_cast<std::size_t>(cfg.num_classes));
  for (std::int64_t cls = 0; cls < cfg.num_classes; ++cls) {
    Tensor coarse = Tensor::rand_uniform({cfg.channels, k, k}, rng, 0.15f, 0.85f);
    templates_.push_back(upsample_bilinear(coarse, cfg.image_size));
  }
}

std::vector<std::int64_t> LazyShardSource::shard_class_counts(
    std::int64_t client) const {
  // Analytic mirror of partition_non_iid's skew: client k majors on a cyclic
  // block of ~major_class_fraction of the classes (block start advances with
  // k), and major classes hold major_data_fraction of its samples. O(classes)
  // and tensor-free, so planning paths can enumerate pool metadata cheaply.
  const std::int64_t nc = plan_.synth.num_classes;
  const auto majors = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(
          std::lround(static_cast<double>(nc) * plan_.major_class_fraction)),
      1, nc);
  const std::int64_t start = (client * majors) % nc;
  std::int64_t major_total = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::lround(
          static_cast<double>(plan_.shard_size) * plan_.major_data_fraction)),
      0, plan_.shard_size);
  if (majors == nc) major_total = plan_.shard_size;
  const std::int64_t minor_total = plan_.shard_size - major_total;
  std::vector<std::int64_t> counts(static_cast<std::size_t>(nc), 0);
  for (std::int64_t j = 0; j < majors; ++j) {
    const auto cls = static_cast<std::size_t>((start + j) % nc);
    counts[cls] = major_total / majors + (j < major_total % majors ? 1 : 0);
  }
  const std::int64_t minors = nc - majors;
  for (std::int64_t j = 0; j < minors; ++j) {
    const auto cls = static_cast<std::size_t>((start + majors + j) % nc);
    counts[cls] = minor_total / minors + (j < minor_total % minors ? 1 : 0);
  }
  return counts;
}

Dataset LazyShardSource::make_shard(std::int64_t client) const {
  Rng rng(Rng::mix_seed(Rng::mix_seed(plan_.synth.seed, kShardStream),
                        static_cast<std::uint64_t>(client)));
  return render_split(templates_, shard_class_counts(client), plan_.synth, rng);
}

Dataset LazyShardSource::render_test() const {
  Rng rng(Rng::mix_seed(plan_.synth.seed, kTestStream));
  return render_split(templates_, split_counts(plan_.synth, plan_.synth.test_size),
                      plan_.synth, rng);
}

Dataset LazyShardSource::render_public(std::int64_t size) const {
  Rng rng(Rng::mix_seed(plan_.synth.seed, kPublicStream));
  return render_split(templates_, split_counts(plan_.synth, size), plan_.synth,
                      rng);
}

}  // namespace fp::data
