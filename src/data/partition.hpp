// Federated data partitioning.
//
// Reproduces the statistical heterogeneity of the paper (§7.1, following
// Shah et al. 2021): on each client, 80% of the local data belongs to ~20%
// of the classes ("major" classes) and 20% to the remaining classes. Also
// provides the public-set split used by the knowledge-distillation baselines
// (~10% of the training data, paper §B.4).
#pragma once

#include "data/dataset.hpp"

namespace fp::data {

struct PartitionConfig {
  std::int64_t num_clients = 100;
  double major_class_fraction = 0.2;  ///< ~20% of classes are major per client
  double major_data_fraction = 0.8;   ///< 80% of local data from major classes
  std::uint64_t seed = 7;
};

/// Splits `train` into per-client shards with the 80/20 non-IID skew.
/// Every sample is assigned to exactly one client.
std::vector<Dataset> partition_non_iid(const Dataset& train,
                                       const PartitionConfig& cfg);

/// Uniform IID partition (diagnostic baseline).
std::vector<Dataset> partition_iid(const Dataset& train, std::int64_t num_clients,
                                   std::uint64_t seed);

struct PublicSplit {
  Dataset public_set;  ///< server-side distillation data
  Dataset remainder;   ///< what the clients partition among themselves
};

/// Holds out a class-stratified `fraction` of the dataset as the public set.
PublicSplit split_public(const Dataset& train, double fraction, std::uint64_t seed);

}  // namespace fp::data
