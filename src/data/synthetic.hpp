// Synthetic image-classification datasets.
//
// CIFAR-10 and Caltech-256 are not available offline, so the accuracy-plane
// experiments run on synthetic stand-ins that exercise the same code paths
// and — crucially — exhibit a genuine utility/robustness trade-off:
//   * each class has a smooth low-frequency template (the "robust" feature),
//   * samples add per-sample high-frequency noise and brightness/shift
//     jitter (the "brittle" features a standard model can overfit to),
// so PGD attacks measurably reduce accuracy and adversarial training
// measurably restores it at some clean-accuracy cost (see DESIGN.md §1).
#pragma once

#include "data/dataset.hpp"

namespace fp::data {

struct SyntheticConfig {
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  std::int64_t train_size = 4000;
  std::int64_t test_size = 1000;
  float noise_std = 0.10f;       ///< per-pixel Gaussian noise
  std::int64_t max_shift = 2;    ///< random template translation (pixels)
  float template_coarseness = 4; ///< template is a KxK grid upsampled bilinearly
  bool unbalanced_classes = false;  ///< Zipf-like class sizes (Caltech flavour)
  std::uint64_t seed = 42;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Generates a train/test pair from class templates shared by both splits.
TrainTest make_synthetic(const SyntheticConfig& cfg);

/// 10-class, 3x16x16, balanced — the CIFAR-10 stand-in.
SyntheticConfig synth_cifar_config();

/// 32-class, 3x16x16, unbalanced and noisier — the Caltech-256 stand-in.
SyntheticConfig synth_caltech_config();

}  // namespace fp::data
