// Synthetic image-classification datasets.
//
// CIFAR-10 and Caltech-256 are not available offline, so the accuracy-plane
// experiments run on synthetic stand-ins that exercise the same code paths
// and — crucially — exhibit a genuine utility/robustness trade-off:
//   * each class has a smooth low-frequency template (the "robust" feature),
//   * samples add per-sample high-frequency noise and brightness/shift
//     jitter (the "brittle" features a standard model can overfit to),
// so PGD attacks measurably reduce accuracy and adversarial training
// measurably restores it at some clean-accuracy cost (see DESIGN.md §1).
#pragma once

#include "data/dataset.hpp"

namespace fp::data {

struct SyntheticConfig {
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  std::int64_t train_size = 4000;
  std::int64_t test_size = 1000;
  float noise_std = 0.10f;       ///< per-pixel Gaussian noise
  std::int64_t max_shift = 2;    ///< random template translation (pixels)
  float template_coarseness = 4; ///< template is a KxK grid upsampled bilinearly
  bool unbalanced_classes = false;  ///< Zipf-like class sizes (Caltech flavour)
  std::uint64_t seed = 42;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Generates a train/test pair from class templates shared by both splits.
TrainTest make_synthetic(const SyntheticConfig& cfg);

/// 10-class, 3x16x16, balanced — the CIFAR-10 stand-in.
SyntheticConfig synth_cifar_config();

/// 32-class, 3x16x16, unbalanced and noisier — the Caltech-256 stand-in.
SyntheticConfig synth_caltech_config();

// ---------------------------------------------------------------------------
// Plan-backed (lazy) shard synthesis — DESIGN.md §9.
//
// make_synthetic + partition_non_iid render the whole pool through ONE rng
// stream, so client k's bytes depend on every client before it; that path is
// inherently O(pool). A ShardPlan instead gives every client its own stream,
// derived statelessly from (seed, client id), so any shard can be synthesized
// on dispatch — in any order, on any thread — and discarded after upload,
// with bit-identical bytes every time it is rebuilt. The non-IID label skew
// of partition_non_iid (each client majors on a cyclic block of classes that
// holds major_data_fraction of its samples) is reproduced analytically from
// the client id, so shard metadata (sizes, class histograms) costs no tensor
// synthesis at all.
// ---------------------------------------------------------------------------

struct ShardPlan {
  SyntheticConfig synth;               ///< templates, image geometry, jitter
  std::int64_t num_clients = 0;
  std::int64_t shard_size = 0;         ///< samples per client shard
  float major_class_fraction = 0.2f;   ///< fraction of classes a client majors on
  float major_data_fraction = 0.8f;    ///< fraction of a shard in major classes
};

/// Synthesizes shards, the test split, and the public split on demand from a
/// ShardPlan. Construction renders only the per-class templates (the same
/// draws make_synthetic uses), never sample tensors.
class LazyShardSource {
 public:
  explicit LazyShardSource(const ShardPlan& plan);

  const ShardPlan& plan() const { return plan_; }
  std::int64_t num_clients() const { return plan_.num_clients; }
  std::int64_t shard_size() const { return plan_.shard_size; }

  /// Per-class sample counts of client k's shard — pure metadata, O(classes).
  std::vector<std::int64_t> shard_class_counts(std::int64_t client) const;

  /// Synthesizes client k's shard. Bit-identical on every call for a given
  /// (plan.synth.seed, client); thread-safe (templates are immutable).
  Dataset make_shard(std::int64_t client) const;

  /// Test split from a dedicated stream (independent of every shard).
  Dataset render_test() const;

  /// Public/distillation split of `size` samples from its own stream.
  Dataset render_public(std::int64_t size) const;

 private:
  ShardPlan plan_;
  std::vector<Tensor> templates_;
};

}  // namespace fp::data
