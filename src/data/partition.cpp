#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fp::data {

namespace {
/// Per-class index queues, shuffled.
std::vector<std::vector<std::int64_t>> class_queues(const Dataset& ds, Rng& rng) {
  std::vector<std::vector<std::int64_t>> queues(
      static_cast<std::size_t>(ds.num_classes));
  for (std::int64_t i = 0; i < ds.size(); ++i)
    queues[static_cast<std::size_t>(ds.labels[static_cast<std::size_t>(i)])]
        .push_back(i);
  for (auto& q : queues) rng.shuffle(q);
  return queues;
}

std::int64_t pop_from(std::vector<std::vector<std::int64_t>>& queues,
                      std::size_t cls) {
  auto& q = queues[cls];
  if (q.empty()) return -1;
  const std::int64_t idx = q.back();
  q.pop_back();
  return idx;
}

/// Pops from any non-empty queue, preferring the fullest (keeps balance).
std::int64_t pop_any(std::vector<std::vector<std::int64_t>>& queues) {
  std::size_t best = queues.size();
  std::size_t best_size = 0;
  for (std::size_t c = 0; c < queues.size(); ++c)
    if (queues[c].size() > best_size) {
      best = c;
      best_size = queues[c].size();
    }
  if (best == queues.size()) return -1;
  return pop_from(queues, best);
}
}  // namespace

std::vector<Dataset> partition_non_iid(const Dataset& train,
                                       const PartitionConfig& cfg) {
  if (cfg.num_clients <= 0) throw std::invalid_argument("partition: no clients");
  Rng rng(cfg.seed);
  auto queues = class_queues(train, rng);
  const std::int64_t classes = train.num_classes;
  const auto majors_per_client = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(cfg.major_class_fraction * static_cast<double>(classes))));

  // Assign major classes cyclically from a shuffled class order so that every
  // class is major for roughly the same number of clients.
  std::vector<std::int64_t> class_order(static_cast<std::size_t>(classes));
  for (std::size_t i = 0; i < class_order.size(); ++i)
    class_order[i] = static_cast<std::int64_t>(i);
  rng.shuffle(class_order);

  const std::int64_t base_shard = train.size() / cfg.num_clients;
  std::vector<std::vector<std::int64_t>> shards(
      static_cast<std::size_t>(cfg.num_clients));
  std::int64_t cursor = 0;
  for (std::int64_t k = 0; k < cfg.num_clients; ++k) {
    std::vector<std::int64_t> majors;
    for (std::int64_t j = 0; j < majors_per_client; ++j) {
      majors.push_back(class_order[static_cast<std::size_t>(
          (cursor + j) % classes)]);
    }
    cursor += majors_per_client;
    const auto major_take = static_cast<std::int64_t>(
        std::llround(cfg.major_data_fraction * static_cast<double>(base_shard)));
    auto& shard = shards[static_cast<std::size_t>(k)];
    // 80%: round-robin over the client's major classes.
    for (std::int64_t i = 0; i < major_take; ++i) {
      const auto cls = static_cast<std::size_t>(
          majors[static_cast<std::size_t>(i) % majors.size()]);
      std::int64_t idx = pop_from(queues, cls);
      if (idx < 0) idx = pop_any(queues);
      if (idx < 0) break;
      shard.push_back(idx);
    }
    // 20%: anything else (the fullest remaining queues).
    for (std::int64_t i = major_take; i < base_shard; ++i) {
      const std::int64_t idx = pop_any(queues);
      if (idx < 0) break;
      shard.push_back(idx);
    }
  }
  // Deal any leftovers round-robin.
  std::int64_t k = 0;
  for (std::int64_t idx = pop_any(queues); idx >= 0; idx = pop_any(queues)) {
    shards[static_cast<std::size_t>(k % cfg.num_clients)].push_back(idx);
    ++k;
  }

  std::vector<Dataset> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) out.push_back(train.subset(shard));
  return out;
}

std::vector<Dataset> partition_iid(const Dataset& train, std::int64_t num_clients,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> order(static_cast<std::size_t>(train.size()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::int64_t>(i);
  rng.shuffle(order);
  std::vector<Dataset> out;
  const std::int64_t per = train.size() / num_clients;
  for (std::int64_t c = 0; c < num_clients; ++c) {
    std::vector<std::int64_t> shard(
        order.begin() + c * per,
        order.begin() + (c + 1 == num_clients ? train.size() : (c + 1) * per));
    out.push_back(train.subset(shard));
  }
  return out;
}

PublicSplit split_public(const Dataset& train, double fraction, std::uint64_t seed) {
  Rng rng(seed);
  auto queues = class_queues(train, rng);
  std::vector<std::int64_t> public_idx, rest_idx;
  for (auto& q : queues) {
    const auto take = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(q.size())));
    for (std::size_t i = 0; i < q.size(); ++i)
      (i < take ? public_idx : rest_idx).push_back(q[i]);
  }
  return {train.subset(public_idx), train.subset(rest_idx)};
}

}  // namespace fp::data
