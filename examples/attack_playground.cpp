// Attack playground: trains one small model two ways — standard training
// vs PGD adversarial training — and evaluates both against FGSM, PGD, and
// AutoAttackLite, illustrating the utility/robustness trade-off that
// motivates the paper (Table 1).
#include <cstdio>

#include "attack/evaluate.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace {
using namespace fp;

/// Centralized training loop (standard or adversarial).
void train(models::BuiltModel& model, const data::Dataset& train, bool adversarial,
           int iters) {
  nn::Sgd opt(model.parameters_range(0, model.num_atoms()),
              model.gradients_range(0, model.num_atoms()), {0.05f, 0.9f, 1e-4f});
  Rng rng(7);
  data::BatchIterator batches(train, 32, rng);
  attack::PgdConfig a;
  a.steps = 5;
  for (int i = 0; i < iters; ++i) {
    auto b = batches.next();
    Tensor x = b.x;
    if (adversarial) {
      model.set_bn_tracking(false);
      auto fn = [&model](const Tensor& xx, const std::vector<std::int64_t>& yy,
                         Tensor* g) {
        const Tensor logits = model.forward(xx, true);
        if (g)
          *g = model.backward_range(0, model.num_atoms(),
                                    cross_entropy_grad(logits, yy));
        return cross_entropy(logits, yy);
      };
      x = attack::pgd(fn, b.x, b.y, a, rng);
      model.set_bn_tracking(true);
    }
    model.zero_grad_range(0, model.num_atoms());
    const Tensor logits = model.forward(x, true);
    model.backward_range(0, model.num_atoms(), cross_entropy_grad(logits, b.y));
    opt.step();
  }
}

void evaluate(const char* label, models::BuiltModel& model,
              const data::Dataset& test) {
  attack::RobustEvalConfig cfg;
  cfg.pgd_steps = 20;
  cfg.aa_steps = 15;
  cfg.max_samples = 200;
  const auto r = attack::evaluate_robustness(model, test, cfg);

  // One-step FGSM for comparison.
  Rng rng(9);
  auto fn = attack::model_ce_lossgrad(model);
  attack::PgdConfig fcfg;
  const auto b = data::take_batch(test, 0, 200);
  const Tensor x_fgsm = attack::fgsm(fn, b.x, b.y, fcfg);
  const Tensor logits = model.forward(x_fgsm, false);
  const double fgsm_acc = accuracy(logits, b.y);

  std::printf("%-20s clean %5.1f%%  FGSM %5.1f%%  PGD-20 %5.1f%%  AA %5.1f%%\n",
              label, 100 * r.clean_acc, 100 * fgsm_acc, 100 * r.pgd_acc,
              100 * r.aa_acc);
}

}  // namespace

int main() {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 1200;
  dcfg.test_size = 300;
  const auto dataset = data::make_synthetic(dcfg);

  Rng rng(3);
  models::BuiltModel standard(models::tiny_vgg_spec(16, 10, 6), rng);
  models::BuiltModel robust(models::tiny_vgg_spec(16, 10, 6), rng);

  std::printf("training standard model (300 iters)...\n");
  train(standard, dataset.train, /*adversarial=*/false, 300);
  std::printf("training adversarial model (300 iters, PGD-5)...\n");
  train(robust, dataset.train, /*adversarial=*/true, 300);

  std::printf("\n%-20s %s\n", "model", "accuracy under attack (eps = 8/255)");
  evaluate("standard training", standard, dataset.test);
  evaluate("adversarial (PGD)", robust, dataset.test);
  std::printf(
      "\nExpected shape: ST wins on clean accuracy, AT wins under attack —\n"
      "the utility-robustness trade-off that forces FAT onto large models.\n");
  return 0;
}
