// Quickstart: memory-efficient federated adversarial training with
// FedProphet on a synthetic CIFAR-like dataset, driven through the
// declarative experiment API (src/exp/, DESIGN.md §7).
//
// Walks the public API surface end to end:
//   1. describe the whole experiment as an ExperimentSpec — every knob is a
//      dotted key, the same keys `fp_run` accepts on its command line,
//   2. build the setup (synthetic data, non-IID shards, device fleet, model
//      family) and inspect the module partition (Algorithm 1),
//   3. construct FedProphet from the method registry and train it
//      (adversarial cascade learning + server coordinator, Algorithm 2),
//   4. evaluate clean / PGD-20 / AutoAttackLite accuracy.
//
// Runs in about a minute on one CPU core.
#include <cstdio>

#include "cascade/partitioner.hpp"
#include "exp/runner.hpp"
#include "fedprophet/fedprophet.hpp"

int main() {
  using namespace fp;

  // 1. The experiment, declaratively. Defaults reproduce the bench scenario;
  //    every override below is a plain key=value — paste them after `fp_run`
  //    to get the identical run from the CLI.
  exp::ExperimentSpec spec;
  for (const char* kv : {
           "method=FedProphet", "workload=cifar", "data.train_size=1500",
           "data.test_size=300", "fl.num_clients=10", "fl.clients_per_round=4",
           "fl.local_iters=5", "fl.batch_size=16", "fl.pgd_steps=3",
           "fl.lr0=0.05", "fl.sgd.lr=0.05", "fl.lr_decay=0.994", "fl.seed=123",
           "env.public_set=0",
           // Rmin = 1/3 of full-model memory; 10 rounds per module stage.
           "fp.rmin_frac=0.3333333333333333", "fp.rounds_per_module=10",
           "fp.eval_every=5", "fp.val_samples=256",
           // Final evaluation: PGD-10 / AA-lite-10 over 200 samples.
           "eval.pgd_steps=10", "eval.aa_steps=10", "eval.aa_restarts=2",
           "eval.max_samples=200",
       })
    exp::apply_override(spec, kv);

  // Map a 0.2 GB reference device onto the tiny trainable backbone.
  const auto backbone = exp::model_registry().resolve("tiny_vgg")(
      {spec.model_image, 10, spec.model_width});
  const auto full_mem = sys::module_train_mem_bytes(
      backbone, 0, backbone.atoms.size(), spec.fl.batch_size, false);
  spec.device_mem_scale =
      static_cast<double>(full_mem) / (0.2 * static_cast<double>(1ull << 30));

  // 2. Build the environment: shards, weights, the paper's CIFAR device pool.
  exp::Setup setup = exp::build_setup(spec);
  std::printf("environment: %lld clients, test set %lld, device pool '%s'...\n",
              static_cast<long long>(setup.env.num_clients()),
              static_cast<long long>(setup.env.test.size()),
              setup.env.devices->pool()[0].name.c_str());

  // 3. FedProphet from the method registry (the same factory fp_run uses).
  exp::MethodRun run = exp::method_registry().resolve("FedProphet")(setup);
  auto& algo = dynamic_cast<fedprophet::FedProphet&>(*run.algo);
  std::printf("partitioned %s into %zu modules (Rmin = %.1f KB):\n",
              setup.model.name.c_str(), algo.partition().num_modules(),
              static_cast<double>(setup.rmin) / 1024.0);
  std::printf("%s",
              cascade::format_partition(setup.model, algo.partition()).c_str());

  // 4. Train (Algorithm 2: module stages with APA + DMA).
  run.train();
  for (const auto& stage : algo.stages())
    std::printf(
        "module %zu: %lld rounds, prefix clean %.1f%% adv %.1f%%, "
        "eps %.4f, E[max||dz||] %.3f\n",
        stage.module + 1, static_cast<long long>(stage.rounds),
        100 * stage.final_clean, 100 * stage.final_adv, stage.eps_used,
        stage.mean_dz);

  // 5. Final three-metric evaluation (the eval.* keys above).
  const auto result = run.evaluate(exp::eval_config(setup.spec));
  std::printf("\nfinal: clean %.1f%%  PGD %.1f%%  AA-lite %.1f%%\n",
              100 * result.clean_acc, 100 * result.pgd_acc, 100 * result.aa_acc);
  std::printf("simulated training time: %.3g s (compute %.3g s, access %.3g s)\n",
              algo.sim_time().total(), algo.sim_time().compute_s,
              algo.sim_time().access_s);
  return 0;
}
