// Quickstart: memory-efficient federated adversarial training with
// FedProphet on a synthetic CIFAR-like dataset.
//
// Walks the full public API surface end to end:
//   1. synthesize a dataset and partition it non-IID over clients,
//   2. build the federated environment (device fleet, cost model),
//   3. partition the backbone into memory-sized modules (Algorithm 1),
//   4. run FedProphet (adversarial cascade learning + server coordinator),
//   5. evaluate clean / PGD-20 / AutoAttackLite accuracy.
//
// Runs in about a minute on one CPU core.
#include <cstdio>

#include "attack/evaluate.hpp"
#include "data/synthetic.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"

int main() {
  using namespace fp;

  // 1. Data: 10-class synthetic image set, split non-IID over 10 clients.
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 1500;
  dcfg.test_size = 300;
  const auto dataset = data::make_synthetic(dcfg);

  fed::FlConfig fl;
  fl.num_clients = 10;
  fl.clients_per_round = 4;
  fl.local_iters = 5;
  fl.batch_size = 16;
  fl.pgd_steps = 3;  // PGD-3 adversarial training (paper uses PGD-10)
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;

  // 2. Environment: shards, weights, the paper's CIFAR device pool.
  fed::FedEnvConfig ecfg;
  ecfg.fl = fl;
  auto env = fed::make_env(dataset, ecfg, models::vgg16_spec(32, 10));
  std::printf("environment: %lld clients, test set %lld, device pool '%s'...\n",
              static_cast<long long>(env.num_clients()),
              static_cast<long long>(env.test.size()),
              env.devices->pool()[0].name.c_str());

  // 3. FedProphet over a TinyVGG backbone, Rmin = 1/3 of full-model memory.
  fedprophet::FedProphetConfig cfg;
  cfg.fl = fl;
  cfg.model_spec = models::tiny_vgg_spec(16, 10, 6);
  const auto full_mem = sys::module_train_mem_bytes(
      cfg.model_spec, 0, cfg.model_spec.atoms.size(), fl.batch_size, false);
  cfg.rmin_bytes = full_mem / 3;
  cfg.rounds_per_module = 10;
  cfg.eval_every = 5;
  cfg.device_mem_scale =
      static_cast<double>(full_mem) / (0.2 * static_cast<double>(1ull << 30));

  fedprophet::FedProphet algo(env, cfg);
  std::printf("partitioned %s into %zu modules (Rmin = %.1f KB):\n",
              cfg.model_spec.name.c_str(), algo.partition().num_modules(),
              static_cast<double>(cfg.rmin_bytes) / 1024.0);
  std::printf("%s", cascade::format_partition(cfg.model_spec, algo.partition()).c_str());

  // 4. Train (Algorithm 2: module stages with APA + DMA).
  algo.train();
  for (const auto& stage : algo.stages())
    std::printf(
        "module %zu: %lld rounds, prefix clean %.1f%% adv %.1f%%, "
        "eps %.4f, E[max||dz||] %.3f\n",
        stage.module + 1, static_cast<long long>(stage.rounds),
        100 * stage.final_clean, 100 * stage.final_adv, stage.eps_used,
        stage.mean_dz);

  // 5. Final three-metric evaluation.
  attack::RobustEvalConfig eval_cfg;
  eval_cfg.pgd_steps = 10;
  eval_cfg.aa_steps = 10;
  eval_cfg.max_samples = 200;
  const auto result =
      attack::evaluate_robustness(algo.global_model(), env.test, eval_cfg);
  std::printf("\nfinal: clean %.1f%%  PGD %.1f%%  AA-lite %.1f%%\n",
              100 * result.clean_acc, 100 * result.pgd_acc, 100 * result.aa_acc);
  std::printf("simulated training time: %.3g s (compute %.3g s, access %.3g s)\n",
              algo.sim_time().total(), algo.sim_time().compute_s,
              algo.sim_time().access_s);
  return 0;
}
