// Heterogeneous fleet walkthrough: samples the paper's device pools under
// balanced and unbalanced systematic heterogeneity, shows per-client
// real-time availability, and demonstrates how the server's Differentiated
// Module Assignment (Eq. 14/15) turns resource-rich clients into "prophets"
// that train extra future modules without stretching the round.
#include <cstdio>

#include "cascade/partitioner.hpp"
#include "exp/registries.hpp"
#include "fedprophet/coordinator.hpp"
#include "sysmodel/device.hpp"

int main() {
  using namespace fp;
  // The paper-exact analytic backbone, from the experiment model registry
  // (the same key an fp_run spec would name as model.name=vgg16).
  const auto spec =
      exp::model_registry().resolve("vgg16")({/*image=*/32, /*classes=*/10});
  const auto partition = cascade::partition_model(spec, 60ll << 20, 64);
  std::printf("VGG16 partitioned into %zu modules at Rmin = 60 MB\n\n",
              partition.num_modules());

  for (const auto het :
       {sys::Heterogeneity::kBalanced, sys::Heterogeneity::kUnbalanced}) {
    const bool balanced = het == sys::Heterogeneity::kBalanced;
    std::printf("== %s sampling, one round, 10 clients ==\n",
                balanced ? "balanced" : "unbalanced");
    sys::DeviceSampler sampler(sys::cifar_device_pool(), het, balanced ? 11 : 22);
    const auto devices = sampler.sample_n(10);

    double perf_min = devices[0].avail_flops;
    for (const auto& d : devices) perf_min = std::min(perf_min, d.avail_flops);

    std::printf("%-18s %10s %10s %8s %s\n", "device", "mem avail", "perf",
                "modules", "(training module 1 this stage)");
    for (const auto& d : devices) {
      const std::size_t end = fedprophet::assign_modules(
          spec, partition, /*m=*/0, 64, d.avail_mem_bytes, d.avail_flops,
          perf_min, /*enabled=*/true);
      std::printf("%-18s %7.0f MB %7.2f TF %8zu %s\n", d.name.c_str(),
                  static_cast<double>(d.avail_mem_bytes) / (1 << 20),
                  d.avail_flops / 1e12, end,
                  end > 1 ? "<- prophet client" : "");
    }
    std::printf("\n");
  }

  std::printf(
      "Unbalanced fleets are dominated by low-memory, low-performance\n"
      "devices, so fewer clients qualify as prophets — exactly the regime\n"
      "where the paper reports the largest accuracy gap from DMA (Table 3).\n");
  return 0;
}
