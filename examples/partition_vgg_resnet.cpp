// Memory-constrained model partitioning on the paper's exact workloads:
// VGG16 @ 3x32x32 (CIFAR-10, B=64, Rmin=60 MB) and ResNet34 @ 3x224x224
// (Caltech-256, B=32, Rmin=224 MB) — the analytic counterpart of the
// paper's Tables 7 and 8, plus the memory-saving summary of Figure 6.
#include <cstdio>

#include "cascade/partitioner.hpp"
#include "models/zoo.hpp"

namespace {

void report(const fp::sys::ModelSpec& spec, std::int64_t rmin_bytes,
            std::int64_t batch) {
  using namespace fp;
  const auto p = cascade::partition_model(spec, rmin_bytes, batch);
  std::printf("%s\n", cascade::format_partition(spec, p).c_str());
  const auto full = sys::module_train_mem_bytes(spec, 0, spec.atoms.size(),
                                                batch, false);
  std::int64_t peak = 0;
  for (std::size_t m = 0; m < p.num_modules(); ++m)
    peak = std::max(peak, cascade::module_mem_bytes(spec, p, m));
  std::printf(
      "full-model training: %.0f MB; largest module: %.0f MB "
      "(%.0f%% memory reduction)\n\n",
      static_cast<double>(full) / (1 << 20), static_cast<double>(peak) / (1 << 20),
      100.0 * (1.0 - static_cast<double>(peak) / static_cast<double>(full)));
}

}  // namespace

int main() {
  std::printf("== VGG16 on CIFAR-10 (Rmin = 60 MB, B = 64) ==\n");
  report(fp::models::vgg16_spec(32, 10), 60ll << 20, 64);

  std::printf("== ResNet34 on Caltech-256 (Rmin = 224 MB, B = 32) ==\n");
  report(fp::models::resnet34_spec(224, 256), 224ll << 20, 32);

  std::printf("== Sweep: modules vs memory budget (VGG16) ==\n");
  const auto spec = fp::models::vgg16_spec(32, 10);
  const auto full =
      fp::sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), 64, false);
  for (const double frac : {0.1, 0.2, 0.3, 0.5, 0.7, 1.0}) {
    const auto p = fp::cascade::partition_model(
        spec, static_cast<std::int64_t>(frac * static_cast<double>(full)), 64);
    std::printf("  Rmin/Rmax = %.1f -> %zu modules\n", frac, p.num_modules());
  }
  return 0;
}
