// Tour of the paper-§8 extensions: checkpointing a trained backbone,
// attaching a LoRA adapter to its classifier and fine-tuning only the
// low-rank factors, low-bit memory accounting, and a black-box Square
// attack on the result.
#include <cstdio>

#include "attack/square.hpp"
#include "data/synthetic.hpp"
#include "models/built_model.hpp"
#include "models/zoo.hpp"
#include "nn/linear.hpp"
#include "nn/lora.hpp"
#include "nn/model_io.hpp"
#include "nn/optimizer.hpp"
#include "nn/quantize.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace fp;
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 800;
  dcfg.test_size = 200;
  const auto dataset = data::make_synthetic(dcfg);

  // 1. Train a small backbone briefly and checkpoint it.
  Rng rng(21);
  models::BuiltModel model(models::tiny_vgg_spec(16, 10, 6), rng);
  {
    nn::Sgd opt(model.parameters_range(0, model.num_atoms()),
                model.gradients_range(0, model.num_atoms()), {0.05f, 0.9f, 1e-4f});
    Rng drng(22);
    data::BatchIterator batches(dataset.train, 32, drng);
    for (int i = 0; i < 150; ++i) {
      const auto b = batches.next();
      model.zero_grad_range(0, model.num_atoms());
      const Tensor logits = model.forward(b.x, true);
      model.backward_range(0, model.num_atoms(), cross_entropy_grad(logits, b.y));
      opt.step();
    }
  }
  const std::string ckpt = "/tmp/fedprophet_backbone.ckpt";
  nn::save_checkpoint(ckpt, model.save_all());
  std::printf("checkpoint written: %s (%zu params+buffers)\n", ckpt.c_str(),
              model.save_all().size());
  model.load_all(nn::load_checkpoint(ckpt));
  std::printf("checkpoint round-trip verified (checksummed format)\n\n");

  // 2. LoRA: replace the classifier's dense update with rank-2 factors.
  //    The backbone classifier here is GAP -> Flatten -> Linear(24, 10).
  auto* head_seq = dynamic_cast<nn::Sequential*>(&model.atom(model.num_atoms() - 1));
  auto* dense = dynamic_cast<nn::Linear*>(&head_seq->at(head_seq->size() - 1));
  nn::LoRaLinear lora(dense->weight(), dense->bias(), /*rank=*/2, /*alpha=*/4.0f,
                      rng);
  std::printf("LoRA adapter: trainable %lld vs dense %lld parameters (%.1f%%)\n",
              static_cast<long long>(lora.trainable_params()),
              static_cast<long long>(lora.dense_params()),
              100.0 * static_cast<double>(lora.trainable_params()) /
                  static_cast<double>(lora.dense_params()));

  // Fine-tune only the adapter on the features of the frozen backbone.
  nn::Sgd lora_opt(lora.parameters(), lora.gradients(), {0.05f, 0.9f, 0.0f});
  Rng drng(23);
  data::BatchIterator batches(dataset.train, 32, drng);
  for (int i = 0; i < 60; ++i) {
    const auto b = batches.next();
    // Features = everything up to (but excluding) the final Linear.
    Tensor feat = model.forward_range(0, model.num_atoms() - 1, b.x, false);
    auto* gap_head = head_seq;
    for (std::size_t l = 0; l + 1 < gap_head->size(); ++l)
      feat = gap_head->at(l).forward(feat, false);
    lora.zero_grad();
    const Tensor logits = lora.forward(feat, true);
    lora.backward(cross_entropy_grad(logits, b.y));
    lora_opt.step();
  }
  std::printf("LoRA fine-tuning done; merged weight available for deployment\n\n");

  // 3. Low-bit accounting: how int8 shrinks FedProphet's module budget.
  const auto spec = models::vgg16_spec(32, 10);
  for (const int bits : {32, 16, 8})
    std::printf("VGG16 full-model training memory at int%-2d: %6.0f MB\n", bits,
                static_cast<double>(nn::low_bit_mem_bytes(
                    spec, 0, spec.atoms.size(), 64, false, bits)) /
                    (1 << 20));

  // 4. Black-box Square attack against the trained backbone.
  auto margin = [&model](const Tensor& x, const std::vector<std::int64_t>& y) {
    const Tensor logits = model.forward(x, false);
    const std::int64_t n = logits.dim(0), c = logits.dim(1);
    std::vector<float> out(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      float self = logits[i * c + y[static_cast<std::size_t>(i)]];
      float other = -1e30f;
      for (std::int64_t j = 0; j < c; ++j)
        if (j != y[static_cast<std::size_t>(i)])
          other = std::max(other, logits[i * c + j]);
      out[static_cast<std::size_t>(i)] = self - other;
    }
    return out;
  };
  const auto b = data::take_batch(dataset.test, 0, 100);
  attack::SquareConfig scfg;
  scfg.iterations = 80;
  Rng arng(24);
  const Tensor adv = attack::square_attack(margin, b.x, b.y, scfg, arng);
  const double clean = accuracy(model.forward(b.x, false), b.y);
  const double robust = accuracy(model.forward(adv, false), b.y);
  std::printf("\nSquare attack (black-box, eps 8/255): clean %.1f%% -> %.1f%%\n",
              100 * clean, 100 * robust);
  std::remove(ckpt.c_str());
  return 0;
}
