// fp_run: the declarative experiment driver (DESIGN.md §7).
//
// One binary drives any method x scheduler x codec x budget scenario:
//
//   fp_run --config exp.json method=FedProphet comm.codec=int8 \
//          mem.enforce_budget=1 fl.scheduler=async
//
// A spec starts from the bench-scenario defaults, is overridden by the
// optional JSON config file and then by key=value arguments (in order),
// resolved (auto fields filled with their concrete values), and executed end
// to end: train, evaluate clean/PGD/AA-lite, print the history summary.
// FP_BENCH_OUT=<dir> additionally exports the trajectory CSV and the
// fully-resolved spec (<name>.spec.json) — `fp_run --config <that file>`
// reproduces the run exactly.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "net/service.hpp"
#include "obs/log.hpp"
#include "serve/model_host.hpp"
#include "serve/server.hpp"

namespace {

using fp::exp::ExperimentSpec;

int usage(std::FILE* out) {
  std::fprintf(out,
               "fp_run — declarative federated-experiment driver\n\n"
               "usage: fp_run [options] [key=value ...]\n\n"
               "options:\n"
               "  --config <file.json>  apply a spec file (nested or dotted keys)\n"
               "  --dump-spec <path>    write the fully-resolved spec and exit\n"
               "  --print-spec          print the fully-resolved spec before running\n"
               "  --plan                print the plan-backed pool's metadata\n"
               "                        (shard sizes, class skew) without\n"
               "                        synthesizing any tensors, and exit\n"
               "  --list                list registered methods/models/workloads/\n"
               "                        schedulers/codecs and exit\n"
               "  --serve               run as distributed root (net.role=root):\n"
               "                        wait for net.workers workers on\n"
               "                        net.host:net.port, then train over them\n"
               "  --worker <host:port>  run as distributed worker serving that\n"
               "                        root (net.role=worker)\n"
               "  --save-model <path>   after training, export the global model\n"
               "                        checkpoint plus its <path>.spec.json\n"
               "                        sidecar (what fp_serve loads)\n"
               "  --api [host:port]     after training, serve the global model\n"
               "                        over HTTP until SIGINT (POST /v1/predict,\n"
               "                        GET /healthz, GET /metricsz)\n"
               "  --trace <out.json>    collect spans and write a Chrome trace\n"
               "                        (obs.trace=1 obs.trace_path=<out.json>;\n"
               "                        load in chrome://tracing / Perfetto)\n"
               "  --log-level <level>   stderr verbosity: quiet, info (default),\n"
               "                        or debug (monotonic-timestamped lines)\n"
               "  --keys                list every spec key with default and doc\n"
               "  --help                this message\n\n"
               "environment:\n"
               "  FP_BENCH_FAST=1    shrink the default scenario ~4x (CI smoke)\n"
               "  FP_BENCH_OUT=<dir> export trajectory CSV + resolved .spec.json\n"
               "  FP_NUM_THREADS=<n> worker threads (default: hardware)\n\n"
               "examples:\n"
               "  fp_run method=FedProphet\n"
               "  fp_run method=jFAT fl.scheduler=async async.straggler_cutoff_s=0.5\n"
               "  fp_run method=jFAT comm.codec=int8 comm.model_network=1\n"
               "  fp_run method=jFAT mem.measure=1 mem.enforce_budget=1 \\\n"
               "         mem.checkpointing=1 mem.budget_frac=0.5\n"
               "  fp_run --serve method=jFAT net.workers=2   # terminal 1\n"
               "  fp_run --worker 127.0.0.1:7171             # terminals 2, 3\n\n"
               "run fp_run --keys for the full dotted-key table.\n");
  return out == stdout ? 0 : 2;
}

void list_registry_names() {
  auto section = [](const char* title, const std::vector<std::string>& names,
                    auto doc_of) {
    std::printf("%s:\n", title);
    for (const auto& n : names)
      std::printf("  %-14s %s\n", n.c_str(), doc_of(n).c_str());
    std::printf("\n");
  };
  using namespace fp::exp;
  section("methods", method_registry().names(),
          [](const std::string& n) { return method_registry().doc(n); });
  section("models", model_registry().names(),
          [](const std::string& n) { return model_registry().doc(n); });
  section("workloads", workload_registry().names(),
          [](const std::string& n) { return workload_registry().doc(n); });
  section("schedulers", scheduler_registry().names(),
          [](const std::string& n) { return scheduler_registry().doc(n); });
  section("codecs", codec_registry().names(),
          [](const std::string& n) { return codec_registry().doc(n); });
}

void list_keys() {
  const ExperimentSpec defaults;
  std::printf("%-26s %-14s %s\n", "key", "default", "doc");
  for (const auto& def : fp::exp::spec_schema())
    std::printf("%-26s %-14s %s\n", def.key.c_str(),
                def.get(defaults).c_str(), def.doc.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path, dump_path, save_model_path;
  bool print_spec = false;
  bool print_plan = false;
  bool api_mode = false;
  std::vector<std::string> overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--list") {
      list_registry_names();
      return 0;
    }
    if (arg == "--keys") {
      list_keys();
      return 0;
    }
    if (arg == "--print-spec") {
      print_spec = true;
      continue;
    }
    if (arg == "--plan") {
      print_plan = true;
      continue;
    }
    if (arg == "--serve") {
      overrides.push_back("net.role=root");
      continue;
    }
    if (arg == "--worker") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fp_run: --worker needs a host:port argument\n\n");
        return usage(stderr);
      }
      const std::string endpoint = argv[++i];
      const auto colon = endpoint.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == endpoint.size()) {
        std::fprintf(stderr, "fp_run: --worker wants host:port, got '%s'\n\n",
                     endpoint.c_str());
        return usage(stderr);
      }
      overrides.push_back("net.role=worker");
      overrides.push_back("net.host=" + endpoint.substr(0, colon));
      overrides.push_back("net.port=" + endpoint.substr(colon + 1));
      continue;
    }
    if (arg == "--save-model") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fp_run: --save-model needs a path argument\n\n");
        return usage(stderr);
      }
      save_model_path = argv[++i];
      continue;
    }
    if (arg == "--api") {
      api_mode = true;
      // Optional host:port operand (anything else is left for the arg loop).
      if (i + 1 < argc && argv[i + 1][0] != '-' &&
          std::strchr(argv[i + 1], '=') == nullptr) {
        const std::string endpoint = argv[++i];
        const auto colon = endpoint.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == endpoint.size()) {
          std::fprintf(stderr, "fp_run: --api wants host:port, got '%s'\n\n",
                       endpoint.c_str());
          return usage(stderr);
        }
        overrides.push_back("serve.host=" + endpoint.substr(0, colon));
        overrides.push_back("serve.port=" + endpoint.substr(colon + 1));
      }
      continue;
    }
    if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fp_run: --trace needs an output path\n\n");
        return usage(stderr);
      }
      overrides.push_back("obs.trace=1");
      overrides.push_back(std::string("obs.trace_path=") + argv[++i]);
      continue;
    }
    if (arg == "--log-level") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fp_run: --log-level needs a level\n\n");
        return usage(stderr);
      }
      fp::obs::LogLevel level;
      if (!fp::obs::parse_log_level(argv[++i], &level)) {
        std::fprintf(stderr,
                     "fp_run: unknown log level '%s' (quiet, info, debug)\n\n",
                     argv[i]);
        return usage(stderr);
      }
      fp::obs::set_log_level(level);
      continue;
    }
    if (arg == "--config" || arg == "--dump-spec") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fp_run: %s needs a path argument\n\n", arg.c_str());
        return usage(stderr);
      }
      (arg == "--config" ? config_path : dump_path) = argv[++i];
      continue;
    }
    if (arg.find('=') != std::string::npos && arg[0] != '-') {
      overrides.push_back(arg);
      continue;
    }
    std::fprintf(stderr, "fp_run: unknown argument '%s'\n\n", arg.c_str());
    return usage(stderr);
  }

  try {
    ExperimentSpec spec;
    if (!config_path.empty()) {
      std::ifstream in(config_path);
      if (!in) {
        std::fprintf(stderr, "fp_run: cannot read config '%s'\n",
                     config_path.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      fp::exp::apply_json(spec, text.str());
    }
    for (const auto& kv : overrides) fp::exp::apply_override(spec, kv);

    if (!dump_path.empty()) {
      // Spec inspection only: resolve (including the model-family-derived
      // autos) without synthesizing the dataset or environment.
      const fp::exp::ExperimentSpec resolved =
          fp::exp::resolve_full(std::move(spec));
      std::ofstream out(dump_path);
      if (!out) {
        std::fprintf(stderr, "fp_run: cannot write '%s'\n", dump_path.c_str());
        return 2;
      }
      out << fp::exp::spec_to_json(resolved);
      std::printf("wrote resolved spec to %s\n", dump_path.c_str());
      return 0;
    }
    if (print_plan) {
      // Metadata-only: the pool plan is derivable without synthesizing a
      // single shard, which is the point of plan-backed pools (DESIGN.md §9).
      const auto src = fp::exp::plan_source(spec);
      if (!src) {
        std::fprintf(stderr,
                     "fp_run: --plan needs a plan-backed pool "
                     "(env.lazy_clients=1 or env.lazy_materialize=1)\n");
        return 2;
      }
      const auto& plan = src->plan();
      std::printf("plan-backed pool: %lld clients x %lld samples "
                  "(%lld classes, seed %llu)\n",
                  static_cast<long long>(src->num_clients()),
                  static_cast<long long>(src->shard_size()),
                  static_cast<long long>(plan.synth.num_classes),
                  static_cast<unsigned long long>(plan.synth.seed));
      std::printf("non-IID skew: %.0f%% of each shard concentrated on %.0f%% "
                  "of classes\n",
                  100.0 * plan.major_data_fraction,
                  100.0 * plan.major_class_fraction);
      const std::int64_t show =
          std::min<std::int64_t>(src->num_clients(), 8);
      for (std::int64_t k = 0; k < show; ++k) {
        const auto counts = src->shard_class_counts(k);
        std::printf("  client %-8lld classes [", static_cast<long long>(k));
        for (std::size_t c = 0; c < counts.size(); ++c)
          std::printf("%s%lld", c ? " " : "",
                      static_cast<long long>(counts[c]));
        std::printf("]\n");
      }
      if (src->num_clients() > show)
        std::printf("  ... (%lld more clients, all derivable from the plan)\n",
                    static_cast<long long>(src->num_clients() - show));
      return 0;
    }
    const std::string role = fp::exp::get_key(spec, "net.role");
    if ((api_mode || !save_model_path.empty()) && role != "off") {
      std::fprintf(stderr,
                   "fp_run: --save-model/--api need the single-process path "
                   "(net.role=off), not '%s'\n",
                   role.c_str());
      return 2;
    }
    if (role == "worker") {
      // The run is defined by the root's resolved spec; local keys beyond
      // net.host/net.port/net.retry_s only matter until the welcome arrives.
      fp::obs::logf(fp::obs::LogLevel::kInfo,
                    "fp_run: worker connecting to %s:%s",
                    fp::exp::get_key(spec, "net.host").c_str(),
                    fp::exp::get_key(spec, "net.port").c_str());
      fp::net::run_worker(spec);
      fp::obs::logf(fp::obs::LogLevel::kInfo,
                    "fp_run: worker finished (root shut down the run)");
      return 0;
    }
    if (role == "root") {
      fp::obs::logf(fp::obs::LogLevel::kInfo,
                    "fp_run: serving %s as distributed root on %s:%s "
                    "(waiting for %s workers)",
                    fp::exp::get_key(spec, "method").c_str(),
                    fp::exp::get_key(spec, "net.host").c_str(),
                    fp::exp::get_key(spec, "net.port").c_str(),
                    fp::exp::get_key(spec, "net.workers").c_str());
      fp::exp::Setup summary_setup = fp::exp::build_setup(spec);
      if (print_spec)
        std::printf("%s", fp::exp::spec_to_json(summary_setup.spec).c_str());
      const fp::exp::RunResult result = fp::net::serve_root(std::move(spec));
      fp::exp::print_run_summary(summary_setup, result);
      return 0;
    }

    fp::exp::Setup setup = fp::exp::build_setup(std::move(spec));
    if (print_spec) std::printf("%s", fp::exp::spec_to_json(setup.spec).c_str());

    fp::obs::logf(fp::obs::LogLevel::kInfo,
                  "fp_run: %s on %s (%lld clients, %lld rounds)",
                  setup.spec.method.c_str(), setup.spec.workload.c_str(),
                  static_cast<long long>(setup.spec.fl.num_clients),
                  static_cast<long long>(setup.spec.fl.rounds));
    // Construct the method BEFORE training so a method with no single
    // deployable global model (FedRBN's dual BN banks) fails fast instead
    // of after the whole run.
    const fp::exp::MethodFactory& factory =
        fp::exp::method_registry().resolve(setup.spec.method);
    fp::exp::MethodRun run = factory(setup);
    if ((!save_model_path.empty() || api_mode) && !run.single_global_model) {
      std::fprintf(stderr,
                   "fp_run: method '%s' has no single deployable global model "
                   "(--save-model/--api need one); pick another method\n",
                   setup.spec.method.c_str());
      return 2;
    }
    const fp::exp::RunResult result = fp::exp::run_built(setup, run);
    fp::exp::print_run_summary(setup, result);
    if (!save_model_path.empty()) {
      fp::serve::export_model(save_model_path, setup.spec,
                              run.algo->global_model().save_all());
      std::printf("saved global model to %s (spec sidecar %s)\n",
                  save_model_path.c_str(),
                  fp::serve::sidecar_path(save_model_path).c_str());
    }
    if (api_mode) {
      fp::serve::ServedModel served = fp::serve::make_served_model(
          setup.spec, run.algo->global_model().save_all());
      fp::serve::InferenceServer server(
          std::move(served), fp::serve::serve_config_of(setup.spec));
      return fp::serve::serve_until_signal(server);
    }
    return 0;
  } catch (const fp::exp::SpecError& e) {
    std::fprintf(stderr, "fp_run: %s\n", e.what());
    return 2;
  } catch (const fp::net::NetError& e) {
    std::fprintf(stderr, "fp_run: network error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fp_run: unexpected error: %s\n", e.what());
    return 1;
  }
}
