// fp_serve: batched HTTP inference over a trained global model (DESIGN.md
// §12).
//
//   fp_run method=FedProphet --save-model model.fpck
//   fp_serve model.fpck serve.port=8080
//   curl -d '{"input":[...]}' http://127.0.0.1:8080/v1/predict
//
// The checkpoint's .spec.json sidecar rebuilds the exact registry model the
// training run used; key=value overrides tune the serving plane (serve.*)
// or re-route the compute mode (compute.precision=int8 compute.winograd=1 —
// the weights are precision-independent, so an fp32-trained model can serve
// quantized). SIGINT/SIGTERM stop the server cleanly and print the [serve]
// summary line.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/spec.hpp"
#include "net/socket.hpp"
#include "serve/model_host.hpp"
#include "serve/server.hpp"
#include "serve/wire_json.hpp"

namespace {

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "fp_serve — batched HTTP inference server over a trained model\n\n"
      "usage: fp_serve <checkpoint> [options] [key=value ...]\n\n"
      "options:\n"
      "  --spec <file.json>    spec sidecar (default: <checkpoint>.spec.json)\n"
      "  --offline <req.json>  no server: print the /v1/predict response for\n"
      "                        that request body and exit (byte-identical to\n"
      "                        what the HTTP path would answer)\n"
      "  --help                this message\n\n"
      "key=value overrides are applied on top of the sidecar spec: serve.*\n"
      "tunes the server (serve.port=0 binds an ephemeral port), compute.*\n"
      "re-routes the inference kernels (compute.precision=int8).\n\n"
      "endpoints:\n"
      "  POST /v1/predict  {\"input\":[...]} or {\"inputs\":[[...],...]}\n"
      "  GET  /healthz     liveness (\"ok\")\n"
      "  GET  /metricsz    request/batch counters, latency quantiles\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string ckpt_path, spec_path, offline_path;
  std::vector<std::string> overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--spec" || arg == "--offline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fp_serve: %s needs a path argument\n\n",
                     arg.c_str());
        return usage(stderr);
      }
      (arg == "--spec" ? spec_path : offline_path) = argv[++i];
      continue;
    }
    if (arg.find('=') != std::string::npos && arg[0] != '-') {
      overrides.push_back(arg);
      continue;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "fp_serve: unknown option '%s'\n\n", arg.c_str());
      return usage(stderr);
    }
    if (!ckpt_path.empty()) {
      std::fprintf(stderr, "fp_serve: more than one checkpoint given\n\n");
      return usage(stderr);
    }
    ckpt_path = arg;
  }
  if (ckpt_path.empty()) {
    std::fprintf(stderr, "fp_serve: missing checkpoint path\n\n");
    return usage(stderr);
  }

  try {
    fp::serve::ServedModel served =
        fp::serve::load_served_model(ckpt_path, spec_path);
    for (const auto& kv : overrides) {
      fp::exp::apply_override(served.spec, kv);
    }
    // Overrides may have re-routed the compute mode.
    served.compute = served.spec.fl.compute;

    if (!offline_path.empty()) {
      std::ifstream in(offline_path);
      if (!in) {
        std::fprintf(stderr, "fp_serve: cannot read request '%s'\n",
                     offline_path.c_str());
        return 2;
      }
      std::ostringstream body;
      body << in.rdbuf();
      const fp::Tensor x = fp::serve::parse_predict_request(
          body.str(), served.channels(), served.height(), served.width());
      const fp::Tensor logits =
          fp::serve::reference_forward(*served.model, x, served.compute);
      std::printf("%s\n", fp::serve::render_predict_response(logits).c_str());
      return 0;
    }

    const fp::serve::ServeConfig cfg = fp::serve::serve_config_of(served.spec);
    fp::serve::InferenceServer server(std::move(served), cfg);
    return fp::serve::serve_until_signal(server);
  } catch (const fp::serve::BadRequest& e) {
    std::fprintf(stderr, "fp_serve: bad request: %s\n", e.what());
    return 2;
  } catch (const fp::exp::SpecError& e) {
    std::fprintf(stderr, "fp_serve: %s\n", e.what());
    return 2;
  } catch (const fp::net::NetError& e) {
    std::fprintf(stderr, "fp_serve: network error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fp_serve: %s\n", e.what());
    return 1;
  }
}
